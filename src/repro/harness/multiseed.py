"""Multi-seed aggregation.

The simulator is deterministic per seed; running an experiment across
several workload seeds measures how sensitive a result is to the
generated trace.  ``aggregate_normalized`` runs the same comparison for
each seed and reports mean, min and max of the normalized metric — the
error bars a careful evaluation section would include.

Every (seed × protocol) pair is an independent simulation point, so the
whole aggregation is one executor batch: pass ``executor`` to fan it
out and/or serve repeats from the result cache.  The default is the
serial in-process path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.config import ProtocolKind, SystemConfig
from .executor import Executor, WorkloadSpec
from .tables import TextTable


@dataclass(frozen=True)
class SeedStats:
    """Normalized-metric statistics across seeds for one protocol.

    ``failures`` counts seeds whose point failed under the executor's
    ``keep_going`` mode and were therefore excluded from the
    aggregation — error bars over partial data say they are partial.
    """

    mean: float
    minimum: float
    maximum: float
    failures: int = 0

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


def aggregate_normalized(
    workload: str,
    metric: str,
    *,
    num_threads: int = 8,
    scale: float = 0.2,
    seeds: tuple[int, ...] = (1, 2, 3),
    protocols: tuple[ProtocolKind, ...] = (
        ProtocolKind.CE,
        ProtocolKind.CEPLUS,
        ProtocolKind.ARC,
    ),
    executor: Executor | None = None,
) -> dict[ProtocolKind, SeedStats]:
    """Run ``workload`` under every seed; aggregate ``metric`` vs MESI."""
    if not seeds:
        raise ValueError("at least one seed required")
    cfg = SystemConfig(num_cores=num_threads)
    specs = [
        WorkloadSpec.make(
            workload, num_threads=num_threads, seed=seed, scale=scale
        )
        for seed in seeds
    ]
    owned = executor is None
    if executor is None:
        executor = Executor(jobs=1)
    try:
        comparisons = executor.map_compare(
            [(cfg, spec) for spec in specs], protocols=protocols
        )
    finally:
        if owned:
            executor.close()
    samples: dict[ProtocolKind, list[float]] = {p: [] for p in protocols}
    failures: dict[ProtocolKind, int] = {p: 0 for p in protocols}
    for comparison in comparisons:
        if ProtocolKind.MESI not in comparison.results:
            # baseline point failed (keep_going): the whole seed is out
            for proto in protocols:
                failures[proto] += 1
            continue
        normalized = comparison.normalized(metric)
        for proto in protocols:
            value = normalized.get(proto)
            if value is None:
                failures[proto] += 1
            else:
                samples[proto].append(value)
    out: dict[ProtocolKind, SeedStats] = {}
    for proto, values in samples.items():
        if values:
            out[proto] = SeedStats(
                mean=sum(values) / len(values),
                minimum=min(values),
                maximum=max(values),
                failures=failures[proto],
            )
        else:
            nan = float("nan")
            out[proto] = SeedStats(nan, nan, nan, failures=failures[proto])
    return out


def multiseed_table(
    workload: str, metric: str, **kwargs
) -> TextTable:
    """Render multi-seed statistics as a table."""
    stats = aggregate_normalized(workload, metric, **kwargs)
    table = TextTable(
        f"{workload}: {metric} vs MESI across seeds",
        ["protocol", "mean", "min", "max", "spread"],
    )
    for proto, s in stats.items():
        table.add_row(proto.value, s.mean, s.minimum, s.maximum, s.spread)
    return table
