"""Symbolic protocol verifier: static transition extraction + induction.

``repro.protover`` closes the verification stack's static gap: instead
of exploring interleavings (the bounded model checker) or watching one
workload (the sanitizer), it proves properties of the protocol *source*
per guarded transition, before any simulation runs:

1. **Extraction** (:mod:`.extract`): the dispatch methods of
   ``protocols/{base,mesi,ce,ceplus,arc}.py`` are recompiled with every
   branch condition wrapped in a recording guard, so executing one
   ``(state, event)`` step yields the exact sequence of source-level
   guard decisions that produced it — the transition's *symbolic guard*.
2. **Induction** (:mod:`.space`, :mod:`.induct`): an abstract state
   vocabulary per protocol (every invariant-satisfying configuration of
   one focus line over the whole machine — L1 states, byte masks,
   directory, spilled metadata, AIM residency, ARC bank entries and
   region intervals) is encoded onto a real protocol instance; every
   event of the alphabet is executed from every state and the nine
   declarative invariants from :mod:`repro.modelcheck.invariants` are
   re-checked on the post-state.  Eager detection bounds (must/may
   conflict sets computed from the pre-state) catch detector mutations
   that no structural invariant sees.
3. **Refinement** (:mod:`.refine`): CE is stepped against projected
   MESI and CE+ against CE from the same pre-states; any divergence in
   coherence behavior is a finding — the regression guard for base
   class edits.
4. **Concretization** (:mod:`.concretize`): every symbolic
   counterexample must replay as a concrete modelcheck trace program or
   be classified as abstraction imprecision; a trace that replays but
   fails to reproduce its violation is *unsoundness* and test-fatal
   (exit 4), mirroring the staticlint soundness-containment discipline.

The ``repro-protover`` CLI drives the sweep and regenerates the
transition tables committed in ``docs/PROTOCOLS.md``.
"""

from .extract import GuardRecorder, SiteTable, load_instrumented
from .induct import Finding, SweepResult, verify_protocol
from .mutations import MUTATIONS
from .space import PROTOVER_KEYS, protover_config

__all__ = [
    "Finding",
    "GuardRecorder",
    "MUTATIONS",
    "PROTOVER_KEYS",
    "SiteTable",
    "SweepResult",
    "load_instrumented",
    "protover_config",
    "verify_protocol",
]
