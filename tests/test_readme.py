"""Executable-documentation tests: the README's Python snippets run.

Extracts fenced ``python`` code blocks from README.md and executes them
in order, so the quickstart can never rot.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeSnippets:
    def test_readme_has_python_snippets(self):
        assert len(python_blocks()) >= 2

    @pytest.mark.parametrize("index", range(len(python_blocks())))
    def test_snippet_executes(self, index):
        code = python_blocks()[index]
        namespace: dict = {}
        exec(compile(code, f"README.md#python-{index}", "exec"), namespace)

    def test_quickstart_snippet_produces_comparison(self, capsys):
        code = python_blocks()[0]
        namespace: dict = {}
        exec(compile(code, "README.md#quickstart", "exec"), namespace)
        out = capsys.readouterr().out
        assert "ProtocolKind" in out or "1.0" in out  # printed the dicts

    def test_mentioned_commands_exist(self):
        """Every `python -m repro...` module the README mentions imports."""
        import importlib

        text = README.read_text()
        modules = set(re.findall(r"python -m (repro[\w.]+)", text))
        assert modules
        for module in modules:
            importlib.import_module(module)
