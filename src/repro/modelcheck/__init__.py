"""Protocol model checker and coherence invariant sanitizer.

Exhaustively explores every interleaving of small bounded workloads on
the *real* protocol classes, checking a declarative invariant suite at
every reachable state and cross-checking detection against the
happens-before oracle on every complete interleaving; the same suite
compiles into per-dispatch sanitizer assertions for full-size runs
(``run.py --sanitize``).  See ``docs/MODELCHECK.md``.
"""

from .driver import CYCLE_STRIDE, Driver, PROTOCOL_KEYS, Run, modelcheck_config
from .explorer import (
    COMPLETENESS,
    SOUNDNESS,
    Counterexample,
    ExploreStats,
    ModelCheckResult,
    check_protocol,
    explore_workload,
)
from .invariants import INVARIANTS, Invariant, Violation, check_state
from .sanitize import arm_protocol
from .shrink import minimize, parse_trace, render_trace, replay_trace
from .workload import (
    MCEvent,
    Script,
    Workload,
    alphabet,
    curated_scenarios,
    default_script_len,
    enumerate_workloads,
    workload_label,
)

__all__ = [
    "CYCLE_STRIDE",
    "COMPLETENESS",
    "Counterexample",
    "Driver",
    "ExploreStats",
    "INVARIANTS",
    "Invariant",
    "MCEvent",
    "ModelCheckResult",
    "PROTOCOL_KEYS",
    "Run",
    "SOUNDNESS",
    "Script",
    "Violation",
    "Workload",
    "alphabet",
    "arm_protocol",
    "check_protocol",
    "check_state",
    "curated_scenarios",
    "default_script_len",
    "enumerate_workloads",
    "explore_workload",
    "minimize",
    "modelcheck_config",
    "parse_trace",
    "render_trace",
    "replay_trace",
    "workload_label",
]
