"""Simulation-free static analysis of traced programs.

The package answers, without running the cache/NoC simulator, the
questions the simulator answers slowly:

* :mod:`~repro.analysis.hb` / :mod:`~repro.analysis.vectorclock` —
  which access pairs *can* race, under a schedule-independent
  happens-before order (barrier episodes + program order) with a
  common-lockset filter, using FastTrack-style epochs for O(1) pair
  queries;
* :mod:`~repro.analysis.regions` — those races lifted to SFR
  region-pair conflicts, keyed identically to
  :func:`repro.verify.oracle.overlap_conflicts` and the detectors'
  conflict records, so all three are set-comparable;
* :mod:`~repro.analysis.lint` — static lint over traces and
  :class:`~repro.common.config.SystemConfig` combinations, each rule
  with a stable id, severity and fix hint.

Entry points: the ``repro-analyze`` CLI (:mod:`repro.tools.analyze`)
and ``repro.harness.run --analyze``.
"""

from .hb import (
    BarrierStallError,
    HbIndex,
    AccessRace,
    access_races,
    build_hb,
    iter_access_races,
)
from .lint import RULES, Finding, Rule, lint_config, lint_program, max_severity
from .regions import (
    RegionConflict,
    conflict_lines,
    region_conflicts,
    thread_pairs,
)
from .vectorclock import Epoch, VectorClock

__all__ = [
    "AccessRace",
    "BarrierStallError",
    "Epoch",
    "Finding",
    "HbIndex",
    "RULES",
    "RegionConflict",
    "Rule",
    "VectorClock",
    "access_races",
    "build_hb",
    "conflict_lines",
    "iter_access_races",
    "lint_config",
    "lint_program",
    "max_severity",
    "region_conflicts",
    "thread_pairs",
]
