"""Irregular tree-structured sharing ("barnes-like").

An N-body-style tree: the upper levels are read by every thread on
every traversal (heavily read-shared), while leaves are updated under
fine-grained per-leaf locks (mostly exclusive to a few threads).  This
is the irregular pointer-chasing mix SPLASH-2's barnes/radiosity
exhibit: wide read sharing plus scattered, lock-protected writes —
a middle ground between the read-only data-parallel suite entries and
the migratory lock workloads.
"""

from __future__ import annotations

from ..common.rng import make_rng
from ..trace.program import Program
from .base import scaled, workload
from .patterns import AddressSpace, TraceAssembler, random_span, strided_span

#: lock id space for per-leaf locks (offset to avoid clashing with
#: generators that use small lock ids)
_LEAF_LOCK_BASE = 5000


@workload("irregular-barnes")
def generate(
    num_threads: int,
    seed: int,
    scale: float,
    *,
    traversals: int = 150,
    depth: int = 5,
    fanout: int = 4,
    node_words: int = 8,
    leaf_update_words: int = 4,
    private_ops: int = 12,
    gap: int = 2,
) -> Program:
    traversals = scaled(traversals, scale)
    space = AddressSpace()

    # Lay the tree out level by level; node i at level d occupies
    # node_words words.  Level sizes: 1, fanout, fanout^2, ...
    levels: list[list[int]] = []
    for d in range(depth):
        count = fanout**d
        base = space.alloc(count * node_words * 8)
        levels.append([base + i * node_words * 8 for i in range(count)])
    leaves = levels[-1]
    privates = space.alloc_per_thread(num_threads, 32 * 1024)

    traces = []
    for tid in range(num_threads):
        rng = make_rng(seed, "irregular", tid)
        asm = TraceAssembler()
        for _ in range(traversals):
            # Walk root -> leaf, reading each node on the path.
            index = 0
            for d in range(depth):
                node = levels[d][index % len(levels[d])]
                asm.reads(strided_span(node, node_words), gap=gap)
                index = index * fanout + int(rng.integers(0, fanout))
            # Update the reached leaf under its lock.
            leaf_index = index % len(leaves)
            lock = _LEAF_LOCK_BASE + leaf_index
            asm.acquire(lock)
            span = strided_span(leaves[leaf_index], leaf_update_words)
            asm.reads(span)
            asm.writes(span)
            asm.release(lock)
            # Private bookkeeping between traversals.
            asm.accesses(
                random_span(rng, privates[tid], 32 * 1024, private_ops),
                rng.random(private_ops) < 0.4,
                gap=gap,
            )
        traces.append(asm.build())
    return Program(traces, name="irregular-barnes")
