"""Shared infrastructure for the benchmark harness.

Every ``bench_*.py`` module regenerates one of the paper's tables or
figures (see DESIGN.md's experiment index).  Benchmarks run the
experiment once through pytest-benchmark's pedantic mode (simulations
are deterministic — repetition adds nothing) at the ``bench`` preset,
print the regenerated table, and assert the result *shape* the paper
reports.

Run paper-scale versions with ``python -m repro.harness.run <exp-id>``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness import Settings, run_experiment

REPO_ROOT = Path(__file__).resolve().parent.parent


def record_bench(stem: str, payload: dict) -> Path:
    """Append/update the committed ``BENCH_<stem>.json`` snapshot.

    Top-level keys in ``payload`` replace their counterparts; keys the
    payload doesn't mention (e.g. a committed ``floor``) are preserved,
    so a measurement refresh never silently weakens a gate.  Output is
    sorted and newline-terminated to keep the committed diff minimal.
    """
    path = REPO_ROOT / f"BENCH_{stem}.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data.update(payload)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def committed_floor(stem: str, default: float) -> float:
    """The perf floor recorded in ``BENCH_<stem>.json`` (``default``
    when the snapshot doesn't exist yet or records no floor)."""
    path = REPO_ROOT / f"BENCH_{stem}.json"
    if path.exists():
        return float(json.loads(path.read_text()).get("floor", default))
    return default


@pytest.fixture(scope="session")
def bench_settings() -> Settings:
    return Settings.bench()


@pytest.fixture
def run_exp(benchmark, bench_settings):
    """Run one experiment under pytest-benchmark and print its tables."""

    def runner(exp_id: str):
        tables = benchmark.pedantic(
            run_experiment, args=(exp_id, bench_settings), rounds=1, iterations=1
        )
        for table in tables:
            print()
            print(table.render())
        return tables

    return runner
