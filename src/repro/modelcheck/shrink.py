"""Counterexample minimization and replayable trace programs.

A counterexample is a flat list of ``(core, event)`` steps — one
interleaving prefix that violates an invariant.  Because scripted
events carry no inter-step dependencies (boundaries are driven
directly, never blocking), *every subsequence is itself a valid
program*, which makes greedy event deletion a sound shrinker: repeatedly
drop any single step whose removal still reproduces the failure, to a
fixpoint.

Minimized counterexamples render as replayable trace programs — a
line-oriented text format that :func:`parse_trace` reads back and
:func:`replay_trace` executes against a fresh protocol instance, so a
failure printed by CI can be reproduced in three lines of Python.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..trace.events import ACQUIRE, READ, RELEASE, WRITE
from .driver import Driver, Run
from .workload import MCEvent

#: one interleaving: ordered (core, event) steps
Steps = list[tuple[int, MCEvent]]

_OP_NAMES = {READ: "R", WRITE: "W", RELEASE: "REL", ACQUIRE: "ACQ"}
_OP_KINDS = {name: kind for kind, name in _OP_NAMES.items()}

#: line size of the model-checking machine (driver geometry is fixed)
_LINE_SIZE = 64


def minimize(
    steps: Sequence[tuple[int, MCEvent]],
    reproduces: Callable[[Steps], bool],
) -> Steps:
    """Greedy event-deletion shrinking to a 1-minimal counterexample.

    Returns the shortest subsequence found such that no single further
    deletion still reproduces (``reproduces(minimized)`` is True and
    dropping any one step makes it False).
    """
    current: Steps = list(steps)
    changed = True
    while changed:
        changed = False
        i = 0
        while i < len(current):
            candidate = current[:i] + current[i + 1:]
            if candidate and reproduces(candidate):
                current = candidate
                changed = True
            else:
                i += 1
    return current


# --------------------------------------------------------------------------
# the replayable trace-program format
# --------------------------------------------------------------------------


def render_trace(steps: Sequence[tuple[int, MCEvent]]) -> str:
    """Render steps as a replayable trace program (one step per line)."""
    lines = []
    for index, (core, event) in enumerate(steps):
        if event.is_access():
            addr = event.slot * _LINE_SIZE + event.offset
            lines.append(
                f"step {index:2d}: core {core} "
                f"{_OP_NAMES[event.kind]} {addr:#06x}"
            )
        else:
            lines.append(f"step {index:2d}: core {core} {_OP_NAMES[event.kind]}")
    return "\n".join(lines)


def parse_trace(text: str) -> Steps:
    """Parse a :func:`render_trace` program back into steps."""
    steps: Steps = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        # "step N: core C OP [ADDR]"
        _, _, rest = line.partition(":")
        tokens = (rest or line).split()
        if len(tokens) < 3 or tokens[0] != "core":
            raise ValueError(f"unparseable trace step: {raw!r}")
        core = int(tokens[1])
        op = tokens[2]
        if op not in _OP_KINDS:
            raise ValueError(f"unknown op {op!r} in trace step: {raw!r}")
        kind = _OP_KINDS[op]
        if kind in (READ, WRITE):
            if len(tokens) < 4:
                raise ValueError(f"access step missing address: {raw!r}")
            addr = int(tokens[3], 0)
            steps.append(
                (core, MCEvent(kind, addr // _LINE_SIZE, addr % _LINE_SIZE))
            )
        else:
            steps.append((core, MCEvent(kind)))
    return steps


def replay_trace(
    protocol: str, cores: int, addrs: int, text: str, mutate=None
) -> Run:
    """Replay a rendered trace program on a fresh protocol instance.

    Returns the finished :class:`~repro.modelcheck.driver.Run`, whose
    protocol/stats/recorder state can then be inspected (or re-checked
    with :func:`repro.modelcheck.invariants.check_state`).
    """
    driver = Driver(protocol, cores, addrs, mutate=mutate)
    return driver.replay(parse_trace(text))
