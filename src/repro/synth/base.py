"""Workload generator registry.

A *generator* is a function ``(num_threads, seed, scale, **params) ->
Program``.  ``scale`` multiplies the workload's event counts so the same
pattern can run as a quick test (scale ~0.1) or a full benchmark
(scale 1.0+).  Generators register themselves with :func:`workload`,
and :func:`generate` builds by name — the suite and the experiment
harness are built on this registry.
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..common.errors import ConfigError
from ..trace.program import Program


class Generator(Protocol):
    def __call__(
        self, num_threads: int, seed: int, scale: float, **params
    ) -> Program: ...


_REGISTRY: dict[str, Generator] = {}


def workload(name: str) -> Callable[[Generator], Generator]:
    """Decorator registering a workload generator under ``name``."""

    def register(fn: Generator) -> Generator:
        if name in _REGISTRY:
            raise ConfigError(f"workload {name!r} registered twice")
        _REGISTRY[name] = fn
        return fn

    return register


def registered_workloads() -> list[str]:
    """Names of all registered generators, sorted."""
    return sorted(_REGISTRY)


def generate(
    name: str, num_threads: int = 16, seed: int = 1, scale: float = 1.0, **params
) -> Program:
    """Build the named workload."""
    fn = _REGISTRY.get(name)
    if fn is None:
        raise ConfigError(
            f"unknown workload {name!r}; available: {registered_workloads()}"
        )
    if num_threads <= 0:
        raise ConfigError("num_threads must be positive")
    if scale <= 0:
        raise ConfigError("scale must be positive")
    program = fn(num_threads, seed, scale, **params)
    program.name = name
    return program


def scaled(count: int, scale: float, minimum: int = 1) -> int:
    """Scale an event count, keeping at least ``minimum``."""
    return max(minimum, int(round(count * scale)))
