"""Lock-protected producer/consumer pipeline ("ferret/dedup-like").

Half the threads produce items into a shared ring buffer, half consume
them; buffer slots and the head/tail indices are protected by one lock.
Regions are short (one queue operation), the queue lines migrate
producer -> consumer constantly, and the hot index words ping-pong —
the kind of communication-heavy workload where eager invalidation
traffic piles up.
"""

from __future__ import annotations

from ..common.rng import make_rng
from ..trace.program import Program
from .base import scaled, workload
from .patterns import AddressSpace, TraceAssembler, random_span, strided_span


@workload("pipeline-ferret")
def generate(
    num_threads: int,
    seed: int,
    scale: float,
    *,
    items_per_thread: int = 300,
    slot_words: int = 8,
    ring_slots: int = 64,
    work_reads: int = 12,
    gap: int = 2,
) -> Program:
    items = scaled(items_per_thread, scale)
    space = AddressSpace()
    head_addr = space.alloc_lines(1)
    tail_addr = space.alloc_lines(1)
    ring_base = space.alloc(ring_slots * slot_words * 8)
    privates = space.alloc_per_thread(num_threads, 32 * 1024)
    queue_lock = 0

    producers = max(1, num_threads // 2)

    traces = []
    for tid in range(num_threads):
        rng = make_rng(seed, "pipeline", tid)
        asm = TraceAssembler()
        is_producer = tid < producers
        for item in range(items):
            slot = (tid * items + item) % ring_slots
            slot_addrs = strided_span(ring_base + slot * slot_words * 8, slot_words)
            if is_producer:
                # produce: private work creating the item, then enqueue
                asm.reads(
                    random_span(rng, privates[tid], 32 * 1024, work_reads), gap=gap
                )
                asm.acquire(queue_lock)
                asm.read(head_addr)
                asm.writes(slot_addrs)
                asm.write(head_addr)
                asm.release(queue_lock)
            else:
                # consume: dequeue, then private work on the item
                asm.acquire(queue_lock)
                asm.read(tail_addr)
                asm.reads(slot_addrs)
                asm.write(tail_addr)
                asm.release(queue_lock)
                asm.accesses(
                    random_span(rng, privates[tid], 32 * 1024, work_reads),
                    rng.random(work_reads) < 0.3,
                    gap=gap,
                )
        traces.append(asm.build())
    return Program(traces, name="pipeline-ferret")
