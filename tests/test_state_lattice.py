"""The S < O < E < M write-permission lattice, pinned exhaustively.

The numeric state order is load-bearing: a write hit is silent if and
only if ``state >= E``.  O deliberately sits *below* E even though it
holds dirty data — an Owned line may have S copies outstanding, so a
write to it must take the upgrade path and invalidate the sharers
first, exactly like a write to S.  These tests drive a line into each
of the four states and pin the behavior on both sides of the
threshold.
"""

import pytest

from repro.core.machine import Machine
from repro.modelcheck import modelcheck_config
from repro.protocols import make_protocol
from repro.protocols.base import DIRTY_STATES, E, M, O, S, STATE_NAMES

#: the modelcheck geometry runs MESI with the Owned state enabled
LINE = 0
HIT_LATENCY = 1


def fresh_protocol():
    return make_protocol(Machine(modelcheck_config("mesi", 2)))


def drive_to(protocol, state):
    """Put core 0's copy of line 0 into ``state``; return the cycle cursor."""
    if state == S:
        protocol.access(0, 0, 4, False, 0)     # c0: E
        protocol.access(1, 0, 4, False, 100)   # c1 read: both S
    elif state == O:
        protocol.access(0, 0, 4, True, 0)      # c0: M
        protocol.access(1, 0, 4, False, 100)   # c1 read: c0 O, c1 S (MOESI)
    elif state == E:
        protocol.access(0, 0, 4, False, 0)
    elif state == M:
        protocol.access(0, 0, 4, True, 0)
    else:  # pragma: no cover - exhaustiveness guard
        raise AssertionError(state)
    payload = protocol.l1[0].peek(LINE)
    assert payload is not None and payload.state == state, STATE_NAMES[state]
    return 200


class TestLatticeConstants:
    def test_total_order(self):
        assert S < O < E < M

    def test_every_state_named(self):
        assert set(STATE_NAMES) == {S, O, E, M}

    def test_dirty_states_are_exactly_m_and_o(self):
        assert DIRTY_STATES == frozenset({M, O})

    def test_silent_threshold_splits_the_lattice(self):
        assert [s for s in (S, O, E, M) if s >= E] == [E, M]


class TestWritePathPerState:
    """Exhaustive: one write-hit probe per lattice state."""

    @pytest.mark.parametrize("state", (S, O, E, M), ids=lambda s: STATE_NAMES[s])
    def test_write_hit_is_silent_iff_at_least_e(self, state):
        protocol = fresh_protocol()
        cycle = drive_to(protocol, state)
        invalidations_before = protocol.stats.invalidations_sent
        latency = protocol.access(0, 0, 4, True, cycle)
        payload = protocol.l1[0].peek(LINE)
        # every write path ends with the sole M copy
        assert payload is not None and payload.state == M
        assert protocol.l1[1].peek(LINE) is None
        if state >= E:
            # silent: pure L1 hit, no coherence action of any kind
            assert latency == HIT_LATENCY, STATE_NAMES[state]
            assert protocol.stats.invalidations_sent == invalidations_before
        else:
            # upgrade: slower than a hit, and S/O with a second copy
            # outstanding must invalidate it
            assert latency > HIT_LATENCY, STATE_NAMES[state]
            assert protocol.stats.invalidations_sent > invalidations_before

    @pytest.mark.parametrize("state", (S, O), ids=lambda s: STATE_NAMES[s])
    def test_below_threshold_upgrade_removes_the_sharer(self, state):
        protocol = fresh_protocol()
        cycle = drive_to(protocol, state)
        assert protocol.l1[1].peek(LINE) is not None  # sharer outstanding
        protocol.access(0, 0, 4, True, cycle)
        entry = protocol.directory.get(LINE)
        assert entry is not None
        assert entry.owner == 0
        assert entry.sharer_list() == []

    def test_owned_state_holds_dirty_data_yet_upgrades(self):
        """O is dirty (writes back) but still below the silent threshold."""
        protocol = fresh_protocol()
        drive_to(protocol, O)
        payload = protocol.l1[0].peek(LINE)
        assert payload.state in DIRTY_STATES
        assert payload.state < E
