"""Lockset tracking for the static analyzer.

The dynamic analyzer's lockset rule (``analysis/hb.py``) excludes a
conflict when both accesses held a common traced lock.  Statically we
may only claim exclusion when the lock identity is *provable*: a
``with lock:`` over a lock the interpreter resolved to exactly one
:class:`~repro.statics.interp.LockRef`.  A ``with locks[victim]:``
where ``victim`` is an interval contributes an *ambiguous* entry — it
is rendered for the report but never used to prove exclusion, keeping
static exclusion a subset of dynamic exclusion (the soundness
direction).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class HeldEntry:
    """One active lock acquisition (``with`` block or bare acquire)."""

    lock_ids: frozenset  # candidate lock ids
    definite: bool  # exactly one candidate on every path

    @staticmethod
    def single(lock_id: int) -> "HeldEntry":
        return HeldEntry(frozenset((lock_id,)), True)

    @staticmethod
    def ambiguous(lock_ids) -> "HeldEntry":
        ids = frozenset(lock_ids)
        return HeldEntry(ids, len(ids) == 1)


@dataclass
class LockState:
    """The stack of locks held at the current interpretation point."""

    held: list = field(default_factory=list)

    def push(self, entry: HeldEntry) -> None:
        self.held.append(entry)

    def pop(self, entry: HeldEntry) -> None:
        for i in range(len(self.held) - 1, -1, -1):
            if self.held[i] is entry:
                del self.held[i]
                return

    def release_id(self, lock_id: int) -> None:
        """Bare ``lock.release()``: drop the matching definite entry."""
        for i in range(len(self.held) - 1, -1, -1):
            entry = self.held[i]
            if entry.definite and lock_id in entry.lock_ids:
                del self.held[i]
                return

    def definite_ids(self) -> frozenset:
        """Locks provably held here (the only ones exclusion may use)."""
        out: set = set()
        for entry in self.held:
            if entry.definite:
                out.update(entry.lock_ids)
        return frozenset(out)

    def snapshot(self) -> list:
        return list(self.held)

    def restore(self, snap: list) -> None:
        self.held[:] = snap


def common_lock(a: frozenset, b: frozenset) -> bool:
    """Do two sites provably share a lock?  (Static exclusion rule.)"""
    return bool(a & b)
