"""Private cache hierarchy: L1 with an optional exclusive L2 behind it.

The CMPs the CE/ARC line of work simulates give each core a private
L1+L2 pair.  :class:`PrivateHierarchy` wraps the two levels behind the
interface the protocols use, with **exclusive** contents (a line lives
in exactly one level):

* ``lookup``   — L1 hit (0 extra cycles), or L2 hit (line promotes to
  L1, pays the L2 latency), or miss (pays the L2 lookup on the way out).
* ``insert``   — install into L1; the L1 victim demotes to L2; the L2
  victim (if any) is the *outward* eviction the protocol must handle
  (writeback, metadata spill...).
* ``peek``     — find a line in either level without promotion or LRU
  update (remote sharer/owner checks, flush loops).
* ``invalidate`` / ``invalidate_where`` — act on both levels.

With ``l2_cfg=None`` the wrapper is a thin pass-through over the L1 and
behaves exactly like the single-level configuration (the default).
"""

from __future__ import annotations

from typing import Any, Callable

from ..common.config import CacheConfig
from .cache import SetAssocCache


class PrivateHierarchy:
    """One core's private cache levels.

    Any operation that installs a line (``insert``, and ``lookup``'s
    L2-to-L1 promotion, whose demoted L1 victim may land in a *different*
    L2 set and overflow it) can push a line out of the hierarchy; every
    such outward eviction is delivered to ``on_evict(line, payload)`` so
    the owner (the protocol) can write back data, spill metadata and fix
    its directory.  Leave ``on_evict`` unset only for standalone use.
    """

    __slots__ = ("l1", "l2", "l2_latency", "on_evict")

    def __init__(
        self,
        l1_cfg: CacheConfig,
        l2_cfg: CacheConfig | None = None,
        on_evict: Callable[[int, Any], None] | None = None,
    ):
        self.l1 = SetAssocCache.from_config(l1_cfg)
        self.l2 = SetAssocCache.from_config(l2_cfg) if l2_cfg is not None else None
        self.l2_latency = l2_cfg.hit_latency if l2_cfg is not None else 0
        self.on_evict = on_evict

    def _evict_out(self, line: int, payload: Any) -> None:
        if self.on_evict is not None:
            self.on_evict(line, payload)

    def _demote(self, line: int, payload: Any) -> None:
        """Push an L1 victim into the L2, evicting outward on overflow."""
        victim = self.l2.insert(line, payload)
        if victim is not None:
            self._evict_out(victim[0], victim[1])

    # -- lookups -----------------------------------------------------------

    def lookup(self, line: int) -> tuple[Any | None, int, bool]:
        """Find a line for a local access.

        Returns ``(payload, extra_latency, from_l2)``.  An L2 hit
        promotes the line into the L1, demoting the L1 victim into the
        L2 (possibly evicting outward via ``on_evict``).
        """
        payload = self.l1.get(line)
        if payload is not None:
            return payload, 0, False
        if self.l2 is None:
            return None, 0, False
        payload = self.l2.get(line, touch=False)
        if payload is None:
            return None, self.l2_latency, False
        self.l2.invalidate(line)
        victim = self.l1.insert(line, payload)
        if victim is not None:
            self._demote(victim[0], victim[1])
        return payload, self.l2_latency, True

    def get(self, line: int, touch: bool = True) -> Any | None:
        """Drop-in for ``SetAssocCache.get``: with ``touch`` the lookup
        promotes L2 hits (latency not reported — use :meth:`lookup` on
        timed paths); without it, a pure :meth:`peek`."""
        if touch:
            payload, _extra, _from_l2 = self.lookup(line)
            return payload
        return self.peek(line)

    def peek(self, line: int) -> Any | None:
        """Find a line in either level without promotion/LRU update."""
        payload = self.l1.get(line, touch=False)
        if payload is None and self.l2 is not None:
            payload = self.l2.get(line, touch=False)
        return payload

    def contains(self, line: int) -> bool:
        return self.peek(line) is not None

    # -- mutation ------------------------------------------------------------

    def insert(self, line: int, payload: Any) -> None:
        """Install a freshly fetched line into the L1.

        The L1 victim demotes to the L2 (when present); whatever falls
        out of the hierarchy is delivered to ``on_evict``.
        """
        victim = self.l1.insert(line, payload)
        if victim is None:
            return
        if self.l2 is None:
            self._evict_out(victim[0], victim[1])
        else:
            self._demote(victim[0], victim[1])

    def invalidate(self, line: int) -> Any | None:
        payload = self.l1.invalidate(line)
        if payload is None and self.l2 is not None:
            payload = self.l2.invalidate(line)
        return payload

    def invalidate_where(
        self, predicate: Callable[[int, Any], bool]
    ) -> list[tuple[int, Any]]:
        dropped = self.l1.invalidate_where(predicate)
        if self.l2 is not None:
            dropped.extend(self.l2.invalidate_where(predicate))
        return dropped

    # -- introspection -----------------------------------------------------------

    def occupancy(self) -> int:
        total = self.l1.occupancy()
        if self.l2 is not None:
            total += self.l2.occupancy()
        return total

    def items(self):
        yield from self.l1.items()
        if self.l2 is not None:
            yield from self.l2.items()

    def levels(self) -> tuple:
        """The resident cache levels, for read-only bulk scans that want
        to iterate set dicts directly (e.g. the sanitizer)."""
        return (self.l1,) if self.l2 is None else (self.l1, self.l2)
