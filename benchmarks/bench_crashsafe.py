"""Crash-safety benchmark: fsync discipline overhead and salvage speed.

Two gates, budgets committed in ``BENCH_crashsafe.json``:

* **fsync overhead** — a warm, fully-cached sweep (all hits; the
  durable writes are the journal appends and the manifest replace) run
  with the fsync discipline on must cost less than ``floor`` times the
  same sweep with ``$REPRO_NO_FSYNC`` set (default 1.3x).  Durability
  is supposed to be metadata-cheap; this catches an accidental
  fsync-per-byte regression.
* **salvage speed** — :func:`repro.trace.binio.salvage_rtb` over a
  truncated trace whose valid prefix holds 73k+ events must finish
  inside ``salvage_budget_s`` (default 1 second).  The offline repair
  path has to stay usable on real capture files.

Both measurements verify their outputs before timing counts (hit
counts, salvaged event totals) — a fast-but-wrong path can never pass.

Run standalone (``python benchmarks/bench_crashsafe.py``) to print the
numbers and refresh ``BENCH_crashsafe.json``; the pytest entry (CI's
crash-recovery job) enforces the committed budgets.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.common.config import SystemConfig
from repro.common.durable import FSYNC_ENV
from repro.harness import Executor, ResultCache, SimPoint, WorkloadSpec
from repro.harness.checkpoint import CHECKPOINT_NAME, Checkpoint
from repro.trace.binio import salvage_rtb, save_program_bin, scan_rtb
from repro.trace.events import EVENT_DTYPE, ThreadTrace
from repro.trace.program import Program

DEFAULT_FSYNC_RATIO = 1.3
DEFAULT_SALVAGE_BUDGET_S = 1.0

#: events in the salvage victim's valid prefix (the issue's bar: 73k)
SALVAGE_EVENTS = 75_000


#: sweep width: enough points that per-point work (key, lookup,
#: unpickle) dominates, as in real sweeps — the fsync discipline's cost
#: is O(1) per sweep thanks to the journal's group commit
SWEEP_POINTS = 24


def _sweep_points():
    cfg = SystemConfig(num_cores=2)
    return [
        SimPoint(cfg, WorkloadSpec.make(
            "lock-counter", num_threads=2, seed=s, scale=0.03))
        for s in range(1, SWEEP_POINTS + 1)
    ]


def _warm_sweep_seconds(root: Path, repeats: int = 5) -> float:
    """Best-of-N wall clock for an all-hits sweep with journaling."""
    points = _sweep_points()
    best = float("inf")
    for _ in range(repeats):
        cache = ResultCache(root)
        checkpoint = Checkpoint(root / CHECKPOINT_NAME)
        start = time.perf_counter()
        with Executor(jobs=1, cache=cache, checkpoint=checkpoint) as ex:
            ex.run_points(points)
        ex.manifest.write(root / "manifest.json")
        best = min(best, time.perf_counter() - start)
        assert cache.stats.hits == len(points), "sweep must be fully warm"
    return best


def bench_fsync_overhead(root: Path, max_ratio: float) -> dict:
    """Warm sweep with the fsync discipline on vs. off."""
    # populate once (timing only warm runs keeps simulation cost out)
    cache = ResultCache(root)
    with Executor(jobs=1, cache=cache) as ex:
        ex.run_points(_sweep_points())
    assert cache.stats.stores == SWEEP_POINTS

    assert not os.environ.get(FSYNC_ENV), "run with fsyncs enabled"
    fsync_s = _warm_sweep_seconds(root)
    os.environ[FSYNC_ENV] = "1"
    try:
        nofsync_s = _warm_sweep_seconds(root)
    finally:
        del os.environ[FSYNC_ENV]
    ratio = fsync_s / nofsync_s
    assert ratio < max_ratio, (
        f"fsync discipline costs {ratio:.2f}x on a warm cached sweep, "
        f"over the committed {max_ratio:.2f}x budget "
        f"({fsync_s * 1e3:.1f}ms vs {nofsync_s * 1e3:.1f}ms)"
    )
    return {
        "fsync_ms": round(fsync_s * 1e3, 3),
        "nofsync_ms": round(nofsync_s * 1e3, 3),
        "ratio": round(ratio, 3),
    }


def _make_big_trace(path: Path) -> None:
    """A two-thread trace with > SALVAGE_EVENTS events, built directly
    from event arrays (TraceBuilder is needlessly slow at this size)."""
    traces = []
    for tid in range(2):
        count = SALVAGE_EVENTS // 2 + 2_000
        events = np.zeros(count, dtype=EVENT_DTYPE)
        events["kind"][:] = 1  # writes
        events["addr"][:] = (np.arange(count, dtype=np.uint64) * 8) % (1 << 20)
        events["size"][:] = 8
        events["gap"][:] = 1
        traces.append(ThreadTrace(events))
    save_program_bin(
        Program(traces, name="salvage-bench"), path, chunk_events=4096
    )


def bench_salvage(root: Path, budget_s: float) -> dict:
    root.mkdir(parents=True, exist_ok=True)
    victim = root / "big.rtb"
    _make_big_trace(victim)
    blob = victim.read_bytes()
    victim.write_bytes(blob[: int(len(blob) * 0.97)])  # detlint: ok - bench
    report = scan_rtb(victim)
    assert not report.ok and report.events >= SALVAGE_EVENTS - 4_096, (
        f"victim's valid prefix holds {report.events} events — the "
        f"benchmark must salvage a {SALVAGE_EVENTS}-event-class trace"
    )
    start = time.perf_counter()
    salvage_rtb(victim)
    elapsed = time.perf_counter() - start
    assert scan_rtb(victim).ok, "salvaged trace must verify clean"
    assert elapsed <= budget_s, (
        f"salvaging a {report.events}-event trace took {elapsed:.2f}s, "
        f"over the committed {budget_s:.1f}s budget"
    )
    return {
        "events": report.events,
        "torn_bytes": report.torn_bytes,
        "seconds": round(elapsed, 4),
    }


def bench_crashsafe(tmp_root: Path, max_ratio: float, budget_s: float) -> dict:
    return {
        "floor": max_ratio,
        "salvage_budget_s": budget_s,
        "fsync": bench_fsync_overhead(tmp_root / "sweep", max_ratio),
        "salvage": bench_salvage(tmp_root / "salvage", budget_s),
    }


def _committed_salvage_budget(default: float) -> float:
    path = Path(__file__).resolve().parent.parent / "BENCH_crashsafe.json"
    if path.exists():
        return float(
            json.loads(path.read_text()).get("salvage_budget_s", default)
        )
    return default


def test_bench_crashsafe(tmp_path):
    """Pytest entry (CI crash-recovery job): fsync overhead and salvage
    speed must clear the budgets committed in BENCH_crashsafe.json."""
    from conftest import committed_floor, record_bench

    payload = bench_crashsafe(
        tmp_path,
        committed_floor("crashsafe", DEFAULT_FSYNC_RATIO),
        _committed_salvage_budget(DEFAULT_SALVAGE_BUDGET_S),
    )
    record_bench("crashsafe", payload)


def main() -> int:
    import tempfile

    from conftest import committed_floor, record_bench

    with tempfile.TemporaryDirectory() as tmp:
        payload = bench_crashsafe(
            Path(tmp),
            committed_floor("crashsafe", DEFAULT_FSYNC_RATIO),
            _committed_salvage_budget(DEFAULT_SALVAGE_BUDGET_S),
        )
    fsync, salvage = payload["fsync"], payload["salvage"]
    print(
        f"warm sweep: {fsync['fsync_ms']:.1f}ms with fsync, "
        f"{fsync['nofsync_ms']:.1f}ms without — {fsync['ratio']:.2f}x "
        f"(budget {payload['floor']:.2f}x)"
    )
    print(
        f"salvage: {salvage['events']} events in {salvage['seconds']:.3f}s "
        f"(budget {payload['salvage_budget_s']:.1f}s)"
    )
    path = record_bench("crashsafe", payload)
    print(f"snapshot written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
