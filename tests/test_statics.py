"""Unit tests for the source-level static conflict analyzer."""

import json
import textwrap

import numpy as np
import pytest

from repro.common.errors import StaticAnalysisError, StaticSoundnessError
from repro.core.batch import CONTENDED, RO_SHARED, classify_program
from repro.statics import (
    MAY_CONFLICT,
    MUST_CONFLICT,
    analyze_source,
    analyze_workload,
    build_report,
)
from repro.statics.intervals import Interval, affine_render

CAPTURE_NAMES = (
    "capture-histogram",
    "capture-blackscholes",
    "capture-pipeline",
    "capture-workqueue",
    "capture-racy-counter",
)


def analyze(snippet: str, **kwargs):
    """Analyze a dedented workload snippet (standard imports prepended)."""
    header = (
        "from repro.capture.session import CaptureSession\n"
        "from repro.common.rng import make_rng\n"
        "from repro.synth.base import scaled\n"
    )
    return analyze_source(header + textwrap.dedent(snippet), **kwargs)


# --------------------------------------------------------------------------
# interval domain
# --------------------------------------------------------------------------


class TestIntervals:
    def test_point_and_range(self):
        p = Interval.point(3)
        assert p.is_point and p.contains(3) and not p.contains(4)
        r = Interval.from_range(1, 5)  # range() semantics: end-exclusive
        assert r.lo == 1 and r.hi == 4

    def test_top_absorbs(self):
        top = Interval.top()
        assert top.is_top
        assert top.hull(Interval.point(1)).is_top
        assert (top + Interval.point(1)).is_top

    def test_intersect_disjoint_is_none(self):
        assert Interval.from_range(0, 3).intersect(
            Interval.from_range(4, 9)
        ) is None
        got = Interval(0, 5).intersect(Interval(3, 9))
        assert (got.lo, got.hi) == (3, 5)

    def test_arithmetic(self):
        a = Interval(2, 4)
        b = Interval(10, 20)
        assert ((a + b).lo, (a + b).hi) == (12, 24)
        assert ((b - a).lo, (b - a).hi) == (6, 18)
        m = a * Interval.point(8)
        assert (m.lo, m.hi) == (16, 32)

    def test_floordiv_and_mod(self):
        a = Interval.from_range(10, 21)
        d = a // Interval.point(4)
        assert (d.lo, d.hi) == (2, 5)
        m = Interval.from_range(0, 100) % Interval.point(16)
        assert (m.lo, m.hi) == (0, 15)

    def test_three_valued_compare(self):
        assert Interval.from_range(0, 3).cmp_lt(Interval.from_range(4, 9))
        assert Interval.from_range(4, 9).cmp_lt(Interval.from_range(0, 3)) is False
        assert Interval.from_range(0, 5).cmp_lt(Interval.from_range(3, 9)) is None

    def test_affine_render_fits_slices(self):
        text = affine_render({
            0: Interval.from_range(0, 9),
            1: Interval.from_range(10, 19),
            2: Interval.from_range(20, 29),
        })
        assert "tid" in text

    def test_affine_render_constant(self):
        assert "tid" not in affine_render({0: Interval.point(4), 1: Interval.point(4)})


# --------------------------------------------------------------------------
# the abstract interpreter
# --------------------------------------------------------------------------


class TestInterpreter:
    def test_disjoint_slices_no_conflict(self):
        analysis = analyze("""
            def wl(num_threads=2, seed=1, scale=1.0):
                s = CaptureSession(num_threads, seed=seed, name="t")
                data = s.array(64, name="data")
                def worker(tid):
                    base = tid * 32
                    for i in range(base, base + 32):
                        data[i] = i
                return s.run(worker)
        """, num_threads=2)
        report = build_report(analysis)
        assert report.verdict == "no-conflict"
        assert report.suppressed["disjoint-footprint"] > 0

    def test_same_element_write_is_must(self):
        analysis = analyze("""
            def wl(num_threads=2, seed=1, scale=1.0):
                s = CaptureSession(num_threads, seed=seed, name="t")
                cell = s.struct(("v",), name="cell")
                def worker(tid):
                    cell.v = tid
                return s.run(worker)
        """, num_threads=2)
        report = build_report(analysis)
        assert report.verdict == MUST_CONFLICT

    def test_common_lock_proves_no_conflict(self):
        analysis = analyze("""
            def wl(num_threads=2, seed=1, scale=1.0):
                s = CaptureSession(num_threads, seed=seed, name="t")
                cell = s.struct(("v",), name="cell")
                lock = s.lock()
                def worker(tid):
                    with lock:
                        cell.v = cell.v + 1
                return s.run(worker)
        """, num_threads=2)
        report = build_report(analysis)
        assert report.verdict == "no-conflict"
        assert report.suppressed["common-lock"] > 0

    def test_ambiguous_lock_does_not_prove_exclusion(self):
        analysis = analyze("""
            def wl(num_threads=2, seed=1, scale=1.0):
                s = CaptureSession(num_threads, seed=seed, name="t")
                cell = s.struct(("v",), name="cell")
                locks = [s.lock(), s.lock()]
                def worker(tid):
                    rng = make_rng(seed, "pick", tid)
                    which = int(rng.integers(0, 2))
                    with locks[which]:
                        cell.v = cell.v + 1
                return s.run(worker)
        """, num_threads=2)
        report = build_report(analysis)
        assert report.verdict == MAY_CONFLICT

    def test_barrier_phases_prove_ordering(self):
        analysis = analyze("""
            def wl(num_threads=2, seed=1, scale=1.0):
                s = CaptureSession(num_threads, seed=seed, name="t")
                cell = s.struct(("v",), name="cell")
                done = s.barrier()
                def worker(tid):
                    if tid == 0:
                        cell.v = 1
                    done.wait()
                    if tid == 1:
                        cell.v = 2
                return s.run(worker)
        """, num_threads=2)
        report = build_report(analysis)
        assert analysis.phases.valid
        assert report.verdict == "no-conflict"
        assert report.suppressed["barrier-ordered"] > 0

    def test_conditional_barrier_poisons_phases(self):
        analysis = analyze("""
            def wl(num_threads=2, seed=1, scale=1.0):
                s = CaptureSession(num_threads, seed=seed, name="t")
                cell = s.struct(("v",), name="cell")
                done = s.barrier()
                def worker(tid):
                    rng = make_rng(seed, "c", tid)
                    if tid == 0:
                        cell.v = 1
                    if int(rng.integers(0, 2)) == 0:
                        done.wait()
                    done.wait()
                    if tid == 1:
                        cell.v = 2
                return s.run(worker)
        """, num_threads=2)
        assert not analysis.phases.valid
        assert build_report(analysis).verdict == MAY_CONFLICT

    def test_data_dependent_index_widens_to_may(self):
        analysis = analyze("""
            def wl(num_threads=2, seed=1, scale=1.0):
                s = CaptureSession(num_threads, seed=seed, name="t")
                data = s.array(8, name="data")
                def worker(tid):
                    rng = make_rng(seed, "ix", tid)
                    i = int(rng.integers(0, 8))
                    data[i] = tid
                return s.run(worker)
        """, num_threads=2)
        report = build_report(analysis)
        # index is unknown -> whole-array footprint -> MAY, never MUST
        assert report.verdict == MAY_CONFLICT

    def test_unanalyzable_call_taints_object(self):
        analysis = analyze("""
            import os

            def wl(num_threads=2, seed=1, scale=1.0):
                s = CaptureSession(num_threads, seed=seed, name="t")
                data = s.array(8, name="data")
                def worker(tid):
                    os.mystery(data)  # opaque call: data escapes
                return s.run(worker)
        """, num_threads=2, function="wl")
        [obj] = analysis.objects
        assert obj.tainted
        # tainted objects expand to whole-object sites on every thread
        assert build_report(analysis).verdict == MAY_CONFLICT

    def test_abstract_thread_count_rejected(self):
        with pytest.raises(StaticAnalysisError):
            analyze("""
                import os
                def wl(num_threads=2, seed=1, scale=1.0):
                    s = CaptureSession(int(os.environ["N"]), seed=seed, name="t")
                    return s.run(lambda tid: None)
            """, num_threads=2)

    def test_session_less_source_rejected(self):
        with pytest.raises(StaticAnalysisError):
            analyze_source("def nothing():\n    return 1\n")

    def test_allocator_mirror_matches_session(self):
        from repro.capture.session import CaptureSession

        analysis = analyze("""
            def wl(num_threads=2, seed=9, scale=1.0):
                s = CaptureSession(num_threads, seed=seed, name="mirror")
                a = s.array(10, name="a")
                b = s.struct(("x", "y"), name="b")
                c = s.array(3, name="c", element_size=4)
                return s.run(lambda tid: None)
        """, num_threads=2, seed=9)
        live = CaptureSession(2, seed=9, name="mirror")
        real = [
            live.array(10, name="a").base,
            live.struct(("x", "y"), name="b").base,
            live.array(3, name="c", element_size=4).base,
        ]
        assert [obj.base for obj in analysis.objects] == real


# --------------------------------------------------------------------------
# shipped workload verdicts
# --------------------------------------------------------------------------


class TestWorkloadVerdicts:
    @pytest.mark.parametrize(
        "name", ("capture-histogram", "capture-blackscholes", "capture-pipeline")
    )
    def test_clean_workloads_prove_no_conflict(self, name):
        report = build_report(analyze_workload(name, scale=0.2))
        assert report.verdict == "no-conflict"

    def test_workqueue_is_may_due_to_ambiguous_steals(self):
        report = build_report(analyze_workload("capture-workqueue", scale=0.2))
        assert report.verdict == MAY_CONFLICT
        assert all(p.verdict == MAY_CONFLICT for p in report.pairs)

    def test_racy_counter_is_must_when_unrolled(self):
        # scale 0.2 -> 16 increments <= unroll limit -> `i % 4` concrete
        report = build_report(analyze_workload("capture-racy-counter", scale=0.2))
        assert report.verdict == MUST_CONFLICT

    def test_racy_counter_degrades_to_may_in_interval_mode(self):
        # scale 1.0 -> 60 increments > unroll limit -> branch abstract
        report = build_report(analyze_workload("capture-racy-counter", scale=1.0))
        assert report.verdict == MAY_CONFLICT

    def test_truncated_unroll_notes_widening(self):
        """When a loop's trip count is *known* but over the unroll
        limit, the MAY demotion must be announced, not silent."""
        analysis = analyze_workload("capture-racy-counter", scale=1.0)
        widened = [n for n in analysis.notes if "analysis widened" in n]
        assert widened, analysis.notes
        assert "exceeds the unroll limit 32" in widened[0]
        assert "trip count 60" in widened[0]

    def test_fully_unrolled_loop_has_no_widening_note(self):
        analysis = analyze_workload("capture-racy-counter", scale=0.2)
        assert not any("analysis widened" in n for n in analysis.notes)

    def test_unknown_workload_name(self):
        with pytest.raises(StaticAnalysisError):
            analyze_workload("capture-nonexistent")

    @pytest.mark.parametrize("name", CAPTURE_NAMES)
    def test_reports_serialize_to_json(self, name):
        report = build_report(analyze_workload(name, scale=0.2))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["verdict"] == report.verdict
        assert payload["objects"]
        text = report.render_text()
        assert report.verdict.upper() in text


# --------------------------------------------------------------------------
# the batch-engine hint
# --------------------------------------------------------------------------


class TestLineHint:
    @pytest.mark.parametrize("name", CAPTURE_NAMES)
    def test_hint_accepted_by_exact_validation(self, name):
        from repro.capture.workloads import CAPTURE_WORKLOADS

        report = build_report(analyze_workload(name, seed=3, scale=0.2))
        hint = report.line_hint()
        assert hint is not None
        program = CAPTURE_WORKLOADS[name](num_threads=4, seed=3, scale=0.2)
        out = classify_program(program, 64, static_hint=hint)
        assert out is hint

    def test_corrupted_hint_rejected(self):
        from repro.capture.workloads import CAPTURE_WORKLOADS

        report = build_report(
            analyze_workload("capture-racy-counter", seed=3, scale=0.2)
        )
        hint = report.line_hint()
        assert CONTENDED in hint.codes
        bad_codes = hint.codes.copy()
        bad_codes[bad_codes == CONTENDED] = 0  # claim privately owned
        bad = type(hint)(hint.lines, bad_codes)
        program = CAPTURE_WORKLOADS["capture-racy-counter"](
            num_threads=4, seed=3, scale=0.2
        )
        with pytest.raises(StaticSoundnessError):
            classify_program(program, 64, static_hint=bad)

    def test_validate_false_trusts_hint(self):
        from repro.capture.workloads import CAPTURE_WORKLOADS

        hint = build_report(
            analyze_workload("capture-histogram", seed=3, scale=0.2)
        ).line_hint()
        program = CAPTURE_WORKLOADS["capture-histogram"](
            num_threads=4, seed=3, scale=0.2
        )
        out = classify_program(
            program, 64, static_hint=hint, validate_hint=False
        )
        assert out is hint

    def test_ro_shared_hint_over_written_private_line_rejected(self):
        from repro.trace import Program, TraceBuilder

        t0 = TraceBuilder().write(0x1000).build()
        t1 = TraceBuilder().read(0x2000).build()
        program = Program([t0, t1])
        exact = classify_program(program, 64)
        assert exact.code_of(0x1000) == 0  # private to thread 0, written
        hint = type(exact)(
            exact.lines.copy(),
            np.full(len(exact.codes), RO_SHARED, dtype=np.int64),
        )
        with pytest.raises(StaticSoundnessError):
            classify_program(program, 64, static_hint=hint)

    def test_ro_shared_hint_over_readonly_private_line_accepted(self):
        from repro.trace import Program, TraceBuilder

        t0 = TraceBuilder().read(0x1000).build()
        t1 = TraceBuilder().read(0x2000).build()
        program = Program([t0, t1])
        exact = classify_program(program, 64)
        hint = type(exact)(
            exact.lines.copy(),
            np.full(len(exact.codes), RO_SHARED, dtype=np.int64),
        )
        out = classify_program(program, 64, static_hint=hint)
        assert out is hint

    def test_batch_simulator_accepts_hint(self):
        from repro.capture.workloads import CAPTURE_WORKLOADS
        from repro.common.config import SystemConfig
        from repro.core.batch import BatchSimulator
        from repro.core.simulator import Simulator

        hint = build_report(
            analyze_workload("capture-histogram", seed=3, scale=0.1)
        ).line_hint()
        program = CAPTURE_WORKLOADS["capture-histogram"](
            num_threads=4, seed=3, scale=0.1
        )
        from repro.verify.diffengine import render_result

        cfg = SystemConfig(num_cores=4, protocol="ce+")
        hinted = BatchSimulator(cfg, program, static_hint=hint).run()
        scalar = Simulator(cfg, program).run()
        assert render_result(hinted) == render_result(scalar)


# --------------------------------------------------------------------------
# the CLI
# --------------------------------------------------------------------------


class TestStaticlintCli:
    def test_default_run_over_all_workloads(self, capsys):
        from repro.tools.staticlint import main

        assert main(["--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        for name in CAPTURE_NAMES:
            assert name.replace("-", "_") in out

    def test_fail_on_must_conflict(self, capsys):
        from repro.tools.staticlint import main

        code = main([
            "capture-racy-counter", "--scale", "0.2",
            "--fail-on", "must-conflict",
        ])
        assert code == 3
        assert "MUST-CONFLICT" in capsys.readouterr().out

    def test_clean_workloads_pass_may_conflict_gate(self, capsys):
        from repro.tools.staticlint import main

        assert main([
            "capture-histogram", "capture-blackscholes", "capture-pipeline",
            "--scale", "0.2", "--fail-on", "may-conflict",
        ]) == 0

    def test_json_format(self, capsys):
        from repro.tools.staticlint import main

        assert main(["capture-histogram", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["verdict"] == "no-conflict"

    def test_directory_target_skips_sessionless_files(self, tmp_path, capsys):
        from repro.tools.staticlint import main

        (tmp_path / "helper.py").write_text("def util():\n    return 3\n")
        (tmp_path / "wl.py").write_text(textwrap.dedent("""
            from repro.capture.session import CaptureSession

            def build(num_threads=2, seed=1, scale=1.0):
                s = CaptureSession(num_threads, seed=seed, name="t")
                data = s.array(4, name="data")
                def worker(tid):
                    data[tid] = tid
                return s.run(worker)
        """))
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "skipped" in out
        assert "data" in out

    def test_examples_directory_analyzes(self, capsys):
        from repro.tools.staticlint import main

        assert main(["examples/capture"]) == 0
        out = capsys.readouterr().out
        assert "NO-CONFLICT" in out
