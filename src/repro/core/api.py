"""High-level public API.

Most users need exactly two calls::

    from repro import SystemConfig, run_program, compare_protocols
    from repro.synth import suite

    program = suite.build("pipeline-ferret", num_threads=16, seed=1)
    result = run_program(SystemConfig(protocol="arc"), program)
    comparison = compare_protocols(SystemConfig(num_cores=16), program)
    print(comparison.normalized_runtime())
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..common.config import ProtocolKind, SystemConfig
from ..trace.program import Program
from ..trace.validate import validate_program
from .batch import make_simulator
from .results import Comparison, RunResult

ALL_PROTOCOLS = (
    ProtocolKind.MESI,
    ProtocolKind.CE,
    ProtocolKind.CEPLUS,
    ProtocolKind.ARC,
)


def run_program(
    cfg: SystemConfig,
    program: Program,
    *,
    validate: bool = True,
    engine: str | None = None,
) -> RunResult:
    """Simulate ``program`` on ``cfg`` and return the run's results.

    ``engine`` picks the simulation tier (``"scalar"`` or ``"batch"``,
    byte-identical by the differential suite); ``None`` defers to
    ``$REPRO_ENGINE`` and then the batch default.
    """
    if validate:
        validate_program(program, cfg.line_size)
    return make_simulator(cfg, program, engine=engine).run()


#: maps (config, program) pairs to their results, order-preserving;
#: see ``Executor.as_runner`` in :mod:`repro.harness.executor`
Runner = Callable[[list[tuple[SystemConfig, Program]]], list[RunResult]]


def compare_protocols(
    cfg: SystemConfig,
    program: Program,
    protocols: Iterable[ProtocolKind | str] = ALL_PROTOCOLS,
    *,
    validate: bool = True,
    runner: Runner | None = None,
) -> Comparison:
    """Run ``program`` under several protocols on otherwise-identical
    hardware and return a :class:`Comparison` (normalized to MESI).

    Always includes MESI (the normalization baseline) even if absent
    from ``protocols``.

    ``runner``, when given, executes the per-protocol simulations —
    pass ``Executor(...).as_runner()`` to fan them out across worker
    processes and/or serve them from the on-disk result cache.  It must
    return one :class:`RunResult` per input pair, in input order; the
    simulator is deterministic, so any conforming runner produces the
    identical :class:`Comparison`.
    """
    kinds: list[ProtocolKind] = [ProtocolKind(p) for p in protocols]
    if ProtocolKind.MESI not in kinds:
        kinds.insert(0, ProtocolKind.MESI)
    if validate:
        validate_program(program, cfg.line_size)
    if runner is not None:
        pairs = [(cfg.with_protocol(kind), program) for kind in kinds]
        results = dict(zip(kinds, runner(pairs)))
    else:
        results = {
            kind: make_simulator(cfg.with_protocol(kind), program).run()
            for kind in kinds
        }
    return Comparison(program_name=program.name, results=results)
