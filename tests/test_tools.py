"""Tests for the CLI tools (inspect, trace_dump)."""

import pytest

from repro.tools.inspect import (
    characteristics_table,
    load_target,
    main as inspect_main,
    per_thread_table,
    region_histogram,
)
from repro.tools.trace_dump import main as dump_main
from repro.synth import build_workload
from repro.trace.io import save_program


class TestLoadTarget:
    def test_by_name(self):
        program = load_target("lock-counter", 4, 1, 0.05)
        assert program.name == "lock-counter"
        assert program.num_threads == 4

    def test_from_npz(self, tmp_path):
        original = build_workload("false-sharing", num_threads=4, seed=1, scale=0.05)
        path = tmp_path / "wl.npz"
        save_program(original, path)
        loaded = load_target(str(path), 99, 99, 99.0)  # params ignored for files
        assert loaded.num_threads == 4


class TestTables:
    @pytest.fixture(scope="class")
    def program(self):
        return build_workload("pipeline-ferret", num_threads=4, seed=1, scale=0.05)

    def test_characteristics(self, program):
        table = characteristics_table(program)
        rows = table.row_dict("characteristic")
        assert rows["threads"]["value"] == 4
        assert rows["accesses"]["value"] > 0

    def test_histogram_shares_sum_to_one(self, program):
        table = region_histogram(program)
        assert table.rows
        assert sum(table.column("share")) == pytest.approx(1.0)

    def test_histogram_empty_program(self):
        from repro.trace import Program, TraceBuilder

        table = region_histogram(Program([TraceBuilder().build()]))
        assert table.rows == []

    def test_per_thread(self, program):
        table = per_thread_table(program)
        assert len(table.rows) == 4
        assert table.column("thread") == [0, 1, 2, 3]


class TestCli:
    def test_inspect_list(self, capsys):
        assert inspect_main(["--list"]) == 0
        assert "lock-counter" in capsys.readouterr().out

    def test_inspect_workload(self, capsys):
        assert inspect_main(["lock-counter", "--threads", "4", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Workload: lock-counter" in out
        assert "Region length histogram" in out

    def test_dump_window(self, capsys):
        assert dump_main(
            ["lock-counter", "--threads", "4", "--scale", "0.05", "--limit", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "thread 0" in out
        assert "acquire" in out

    def test_dump_bad_thread(self):
        with pytest.raises(SystemExit):
            dump_main(["lock-counter", "--threads", "4", "--thread", "9"])


class TestConflictsCli:
    def test_racy_workload_reports(self, capsys):
        from repro.tools.conflicts import main

        rc = main(["racy-writers", "--protocol", "arc", "--threads", "4",
                   "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "racy-writers under arc" in out
        assert "conflict exception(s)" in out

    def test_clean_workload_quiet(self, capsys):
        from repro.tools.conflicts import main

        rc = main(["lock-counter", "--protocol", "ce", "--threads", "4",
                   "--scale", "0.05"])
        assert rc == 0
        assert "0 region" in capsys.readouterr().out

    def test_bad_protocol_rejected(self):
        from repro.tools.conflicts import main

        with pytest.raises(SystemExit):
            main(["lock-counter", "--protocol", "nonsense"])


class TestAnalyzeCli:
    def test_clean_workload_text(self, capsys):
        from repro.tools.analyze import main

        rc = main(["stencil-ocean", "--threads", "4", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "races: none" in out
        assert "lint: clean" in out

    def test_racy_workload_text(self, capsys):
        from repro.tools.analyze import main

        rc = main(["racy-writers", "--threads", "4", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted region conflict" in out
        assert "ww on" in out

    def test_json_schema(self, capsys):
        import json

        from repro.tools.analyze import main

        rc = main(["racy-readers", "--threads", "4", "--scale", "0.05",
                   "--format", "json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"target", "threads", "line_size", "races", "lint"}
        assert report["target"] == "racy-readers"
        assert report["threads"] == 4
        assert report["races"]["count"] == len(report["races"]["region_conflicts"])
        assert report["races"]["count"] > 0
        conflict = report["races"]["region_conflicts"][0]
        assert set(conflict) == {
            "line", "first_core", "first_region",
            "second_core", "second_region", "byte_mask", "kind",
        }
        assert conflict["kind"] in ("ww", "rw", "wr")
        assert report["lint"]["max_severity"] in (None, "info", "warning", "error")

    def test_fail_on_race_gates(self, capsys):
        from repro.tools.analyze import main

        assert main(["racy-writers", "--threads", "2", "--scale", "0.05",
                     "--fail-on", "race"]) == 3
        capsys.readouterr()
        assert main(["stencil-ocean", "--threads", "2", "--scale", "0.05",
                     "--fail-on", "race"]) == 0

    def test_no_flags_skip_sections(self, capsys):
        import json

        from repro.tools.analyze import main

        rc = main(["lock-counter", "--threads", "2", "--scale", "0.05",
                   "--no-races", "--format", "json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert "races" not in report
        assert "lint" in report

    def test_bad_format_rejected(self):
        from repro.tools.analyze import main

        with pytest.raises(SystemExit):
            main(["lock-counter", "--format", "yaml"])


class TestParseParams:
    from repro.tools.inspect import parse_params

    def test_coercion(self):
        from repro.tools.inspect import parse_params

        params = parse_params(["rounds=5", "scaleish=0.5", "flag=true", "name=abc"])
        assert params == {"rounds": 5, "scaleish": 0.5, "flag": True, "name": "abc"}

    def test_none_is_empty(self):
        from repro.tools.inspect import parse_params

        assert parse_params(None) == {}

    def test_bad_item_rejected(self):
        from repro.tools.inspect import parse_params

        import pytest as _pytest

        with _pytest.raises(SystemExit):
            parse_params(["oops"])


class TestHeatmap:
    def test_render_marks_hotspot(self):
        import numpy as np

        from repro.noc.topology import MeshTopology
        from repro.tools.heatmap import render_heatmap

        topo = MeshTopology(2, 2)
        flits = np.zeros(topo.num_links)
        # load only the 0<->1 links
        flits[topo.route(0, 1)[0]] = 100
        flits[topo.route(1, 0)[0]] = 100
        art = render_heatmap(topo, flits)
        assert "@@@" in art           # hot horizontal link
        assert "[ 0]" in art and "[ 3]" in art
        assert "shade ramp" in art

    def test_cli_runs(self, capsys):
        from repro.tools.heatmap import main

        rc = main(
            ["lock-counter", "--protocol", "arc", "--threads", "4",
             "--scale", "0.05"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "flit-hops" in out
        assert "[ 0]" in out

    def test_cli_with_params(self, capsys):
        from repro.tools.heatmap import main

        rc = main(
            ["false-sharing", "--protocol", "mesi", "--threads", "4",
             "--scale", "0.05", "--param", "bank_concentrate=true"]
        )
        assert rc == 0
        assert "mesh" in capsys.readouterr().out


class TestWsProfile:
    def test_miss_rate_monotone_in_size(self):
        from repro.tools.wsprofile import miss_rate

        program = build_workload(
            "dataparallel-blackscholes", num_threads=4, seed=1, scale=0.2
        )
        rates = [miss_rate(program, kb) for kb in (4, 32, 256)]
        assert rates[0] >= rates[1] >= rates[2]
        assert 0.0 < rates[0] <= 1.0

    def test_profile_table(self):
        from repro.tools.wsprofile import profile_table

        program = build_workload("lock-counter", num_threads=2, seed=1, scale=0.05)
        table = profile_table(program, sizes_kb=(4, 64))
        assert table.column("cache size") == ["4KB", "64KB"]
        assert all(0 <= r <= 1 for r in table.column("miss rate"))

    def test_cli(self, capsys):
        from repro.tools.wsprofile import main

        rc = main(
            ["migratory-token", "--threads", "2", "--scale", "0.05",
             "--sizes", "8,64"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Working-set profile" in out
        assert "8KB" in out
