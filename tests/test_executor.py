"""Determinism tests for the parallel executor.

The executor's contract: any (jobs, cache) configuration produces
results indistinguishable from the serial in-process path — same
``summary()`` metrics, same rendered table text — because points are
independent deterministic simulations reassembled in submission order.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

from repro.common.config import ProtocolKind, SystemConfig
from repro.core.api import compare_protocols
from repro.harness import (
    Executor,
    Settings,
    SimPoint,
    WorkloadSpec,
    clear_comparison_cache,
    run_experiment,
    set_executor,
    sweep,
)
from repro.synth import build_workload

ALL_KINDS = (
    ProtocolKind.MESI,
    ProtocolKind.CE,
    ProtocolKind.CEPLUS,
    ProtocolKind.ARC,
)

#: one representative per workload family (data-parallel, pipeline,
#: lock-based, false-sharing, racy)
FAMILIES = (
    "dataparallel-blackscholes",
    "pipeline-ferret",
    "lock-counter",
    "false-sharing",
    "racy-writers",
)

_PARALLEL: Executor | None = None


def parallel_executor() -> Executor:
    """One shared jobs=4 pool for the whole module (forks are cheap, but
    not free)."""
    global _PARALLEL
    if _PARALLEL is None:
        _PARALLEL = Executor(jobs=4)
    return _PARALLEL


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pool():
    yield
    global _PARALLEL
    if _PARALLEL is not None:
        _PARALLEL.close()
        _PARALLEL = None


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_jobs4_matches_jobs1_all_protocols(self, name):
        cfg = SystemConfig(num_cores=4)
        spec = WorkloadSpec.make(name, num_threads=4, seed=1, scale=0.05)
        serial = Executor(jobs=1).compare(cfg, spec, protocols=ALL_KINDS)
        fanned = parallel_executor().compare(cfg, spec, protocols=ALL_KINDS)
        assert fanned.summaries() == serial.summaries()

    def test_matches_direct_simulator_path(self):
        """The executor is a transport, not a semantics change: results
        equal compare_protocols() driving the Simulator inline."""
        cfg = SystemConfig(num_cores=4)
        program = build_workload("migratory-token", num_threads=4, seed=3,
                                 scale=0.05)
        inline = compare_protocols(cfg, program, protocols=ALL_KINDS)
        fanned = parallel_executor().compare(cfg, program, protocols=ALL_KINDS)
        assert fanned.summaries() == inline.summaries()

    def test_compare_protocols_runner_hook(self):
        cfg = SystemConfig(num_cores=2)
        program = build_workload("readers-writers", num_threads=2, seed=1,
                                 scale=0.05)
        inline = compare_protocols(cfg, program)
        routed = compare_protocols(
            cfg, program, runner=parallel_executor().as_runner()
        )
        assert routed.summaries() == inline.summaries()

    def test_results_in_submission_order(self):
        cfg = SystemConfig(num_cores=2)
        specs = [
            WorkloadSpec.make("lock-counter", num_threads=2, seed=seed,
                              scale=0.05)
            for seed in (1, 2, 3, 4, 5, 6)
        ]
        points = [SimPoint(cfg, spec) for spec in specs]
        fanned = parallel_executor().run_points(points)
        serial = Executor(jobs=1).run_points(points)
        assert [r.summary() for r in fanned] == [r.summary() for r in serial]

    def test_experiment_table_text_identical(self):
        """A whole experiment renders byte-identical table text."""
        quick = Settings.quick()
        try:
            clear_comparison_cache()
            set_executor(Executor(jobs=1))
            serial = [t.render() for t in run_experiment("fig_perf_16", quick)]
            clear_comparison_cache()
            set_executor(parallel_executor())
            fanned = [t.render() for t in run_experiment("fig_perf_16", quick)]
        finally:
            set_executor(None)
            clear_comparison_cache()
        assert fanned == serial


class TestSweepFanout:
    def test_sweep_jobs4_matches_serial(self):
        program = build_workload("dataparallel-blackscholes", num_threads=4,
                                 seed=1, scale=0.05)
        values = ["mesi", "ce", "ce+", "arc"]

        def run(executor):
            return sweep(
                values,
                make_config=lambda p: SystemConfig(num_cores=4, protocol=p),
                make_program=lambda _p: program,
                executor=executor,
            )

        serial = run(None)
        fanned = run(parallel_executor())
        assert [p.value for p in fanned] == values
        assert [p.result.summary() for p in fanned] == [
            p.result.summary() for p in serial
        ]

    @hsettings(max_examples=5, deadline=None, derandomize=True)
    @given(
        seed=st.integers(min_value=1, max_value=50),
        data=st.data(),
    )
    def test_random_sweep_axes_property(self, seed, data):
        """Seeded property case: random (workload, threads, scale,
        protocol) axes sweep identically serial and parallel."""
        rng = random.Random(seed)
        axes = []
        for _ in range(data.draw(st.integers(min_value=2, max_value=4))):
            axes.append(
                (
                    rng.choice(FAMILIES),
                    rng.choice([2, 4]),
                    rng.choice([0.03, 0.05]),
                    rng.choice(["mesi", "ce", "ce+", "arc"]),
                    rng.randrange(1, 100),
                )
            )

        def run(executor):
            return sweep(
                axes,
                make_config=lambda a: SystemConfig(num_cores=a[1], protocol=a[3]),
                make_program=lambda a: build_workload(
                    a[0], num_threads=a[1], seed=a[4], scale=a[2]
                ),
                executor=executor,
            )

        serial = run(None)
        fanned = run(parallel_executor())
        assert [p.result.summary() for p in fanned] == [
            p.result.summary() for p in serial
        ]


class TestExecutorBasics:
    def test_jobs_must_be_positive(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            Executor(jobs=0)

    def test_empty_batch(self):
        assert Executor(jobs=1).run_points([]) == []

    def test_manifest_records_computed_points(self):
        ex = Executor(jobs=1)
        cfg = SystemConfig(num_cores=2)
        spec = WorkloadSpec.make("lock-counter", num_threads=2, seed=1,
                                 scale=0.05)
        ex.run(cfg, spec)
        assert len(ex.manifest.entries) == 1
        entry = ex.manifest.entries[0]
        assert entry.status == "computed"  # no cache attached
        assert entry.workload == "lock-counter"
        assert entry.protocol == "mesi"
        assert entry.seconds >= 0
        assert len(entry.key) == 64

    def test_spec_build_matches_build_workload(self):
        spec = WorkloadSpec.make("pipeline-ferret", num_threads=4, seed=2,
                                 scale=0.05)
        from repro.harness import program_digest

        direct = build_workload("pipeline-ferret", num_threads=4, seed=2,
                                scale=0.05)
        assert program_digest(spec.build()) == program_digest(direct)


@pytest.mark.slow
class TestEndToEnd:
    def test_run_all_quick_parallel_cached(self):
        """`run all --preset quick`: jobs=4 == jobs=1 byte-for-byte, and
        a warm cache turns the whole invocation into hits (see
        benchmarks/bench_executor.py, which this wires into the suite)."""
        import importlib.util
        from pathlib import Path

        bench_path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "bench_executor.py"
        )
        loader = importlib.util.spec_from_file_location("bench_executor",
                                                        bench_path)
        module = importlib.util.module_from_spec(loader)
        loader.loader.exec_module(module)
        summary = module.bench_executor(min_speedup=2.0)
        assert summary["points"] > 100
