"""Coherence invariant sanitizer for full-size simulations.

The model checker exhausts tiny configurations; the sanitizer carries
the *line-scoped* subset of the same invariant suite into real runs.
:func:`arm_protocol` wraps a protocol instance's ``access`` and
``region_boundary`` methods (per instance, so unsanitized runs pay
nothing) and re-checks, after every dispatch, the invariants that are
locally decidable:

* after an access: SWMR and directory precision on the touched line
  (MESI family), CE metadata liveness on the touched line, ARC
  owner-table/shared-flag consistency on the touched line;
* after a boundary: the CE spill log is clear, ARC's pending deltas and
  dirty shared lines are flushed, and an acquire left no shared line.

Checks are read-only and duck-typed on protocol structure (the same
attributes :mod:`repro.modelcheck.invariants` dispatches on), so this
module imports no protocol classes — which lets
``CoherenceProtocol.__init__`` arm it lazily without an import cycle.
The structural probe runs at the *first dispatch* (never at arm time,
when subclass attributes don't exist yet) and builds checker closures
with the hot attributes pre-bound, keeping the steady-state overhead to
the applicable line scans.  A violation raises
:class:`~repro.common.errors.SimulationError` at the exact dispatch
that broke the invariant.
"""

from __future__ import annotations

from ..common.errors import SimulationError
from ..trace.events import ACQUIRE, BARRIER

#: MESI-family states, mirrored locally (no protocol import)
_S, _O, _E, _M = 1, 2, 3, 4


def _fail(protocol, message: str) -> None:
    raise SimulationError(f"sanitizer[{protocol.name}]: {message}")


def _mesi_checker(protocol):
    """SWMR + directory precision on one line, single pass."""
    l1 = protocol.l1
    directory = protocol.directory
    cores = range(protocol.cfg.num_cores)

    def check(line: int) -> None:
        owner_core = -1
        owners = 0
        exclusive = False
        s_mask = 0
        copies = 0
        for core in cores:
            payload = l1[core].peek(line)
            if payload is None:
                continue
            copies += 1
            state = payload.state
            if state == _S:
                s_mask |= 1 << core
            else:  # O, E or M
                owners += 1
                owner_core = core
                if state != _O:
                    exclusive = True
        if owners > 1:
            _fail(protocol, f"line {line:#x} has multiple owners")
        if exclusive and copies > 1:
            _fail(
                protocol,
                f"line {line:#x}: core {owner_core} holds E/M alongside "
                f"{copies - 1} other copy/copies",
            )
        entry = directory.get(line)
        dir_owner = entry.owner if entry is not None else -1
        dir_sharers = entry.sharers if entry is not None else 0
        expected_owner = owner_core if owners == 1 else -1
        if dir_owner != expected_owner:
            _fail(
                protocol,
                f"line {line:#x}: directory owner {dir_owner}, caches say "
                f"{expected_owner}",
            )
        if dir_sharers != s_mask:
            _fail(
                protocol,
                f"line {line:#x}: directory sharer mask {dir_sharers:#x}, "
                f"caches say {s_mask:#x}",
            )

    return check


def _ce_checker(protocol):
    """CE metadata liveness on one line: live spilled entries are in the
    spill log and never coexist with a live cached copy."""
    l1 = protocol.l1
    meta_table = protocol.meta_table
    spill_log = protocol.spill_log
    region = protocol.region

    def check(line: int) -> None:
        per_line = meta_table.get_line(line)
        if per_line is None:
            return
        for core, entry in per_line.items():
            if entry.region != region[core]:
                continue  # dead metadata: inert by construction
            if line not in spill_log[core]:
                _fail(
                    protocol,
                    f"line {line:#x}: live spilled entry of core {core} "
                    "missing from the spill log",
                )
            payload = l1[core].peek(line)
            if payload is not None and payload.region == region[core]:
                _fail(
                    protocol,
                    f"line {line:#x}: live spilled entry of core {core} "
                    "coexists with a live cached copy",
                )

    return check


def _arc_checker(protocol):
    """ARC classification on one line: owner table vs actual copies."""
    l1 = protocol.l1
    owner_table = protocol.owner_table
    cores = range(protocol.cfg.num_cores)

    def check(line: int) -> None:
        owner = owner_table.get(line)
        for core in cores:
            payload = l1[core].peek(line)
            if payload is None:
                continue
            if owner is None:
                _fail(protocol, f"line {line:#x} cached but never classified")
            elif owner == -2:  # SHARED
                if not payload.shared:
                    _fail(
                        protocol,
                        f"line {line:#x}: SHARED but core {core} caches it "
                        "with shared=False",
                    )
            elif core != owner:
                _fail(
                    protocol,
                    f"line {line:#x}: private to core {owner} but cached "
                    f"by core {core}",
                )
            elif payload.shared:
                _fail(
                    protocol,
                    f"line {line:#x}: private line cached with shared=True",
                )

    return check


def line_checkers(protocol) -> list:
    """Build the line-scoped checkers applicable to ``protocol``.

    Each returned closure takes one line base address and raises
    :class:`~repro.common.errors.SimulationError` on a violation; all
    checks are read-only.  Shared by :func:`arm_protocol` (per-dispatch
    checks) and the batch engine (per-distinct-line checks after a bulk
    run).  Call only once the protocol subclass is fully constructed —
    the structural probe duck-types on subclass attributes.
    """
    checks: list = []
    if hasattr(protocol, "directory"):
        checks.append(_mesi_checker(protocol))
    if hasattr(protocol, "meta_table"):
        checks.append(_ce_checker(protocol))
    if hasattr(protocol, "owner_table"):
        checks.append(_arc_checker(protocol))
    return checks


def _check_boundary(protocol, core: int, kind: int) -> None:
    if hasattr(protocol, "spill_log") and protocol.spill_log[core]:
        _fail(
            protocol,
            f"core {core}: spill log survived the region-end clear",
        )
    if not hasattr(protocol, "owner_table"):
        return
    if protocol.pending_delta[core]:
        _fail(
            protocol,
            f"core {core}: unregistered deltas survived the region-end flush",
        )
    # Direct set-dict iteration: this scan visits every resident private
    # line at every boundary, so the two generator layers of
    # ``hierarchy.items()`` are measurable — see bench_modelcheck.py.
    invalidating = kind in (ACQUIRE, BARRIER)
    for level in protocol.l1[core].levels():
        for entries in level.raw_sets():
            for line, payload in entries.items():
                if not payload.shared:
                    continue
                if payload.dirty:
                    _fail(
                        protocol,
                        f"core {core}: dirty shared line {line:#x} survived "
                        "the self-downgrade",
                    )
                if invalidating:
                    _fail(
                        protocol,
                        f"core {core}: shared line {line:#x} survived "
                        "self-invalidation at an acquire",
                    )


def arm_protocol(protocol) -> None:
    """Wrap ``protocol``'s dispatch methods with post-dispatch checks."""
    inner_access = protocol.access
    inner_boundary = protocol.region_boundary
    line_of = protocol.machine.amap.line
    checks: list = []
    resolved = False

    def access(core, addr, size, is_write, cycle):
        nonlocal resolved
        latency = inner_access(core, addr, size, is_write, cycle)
        if not resolved:
            resolved = True
            checks.extend(line_checkers(protocol))
        line = line_of(addr)
        for check in checks:
            check(line)
        return latency

    def region_boundary(core, cycle, kind):
        latency = inner_boundary(core, cycle, kind)
        _check_boundary(protocol, core, kind)
        return latency

    protocol.access = access
    protocol.region_boundary = region_boundary
