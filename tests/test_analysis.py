"""Unit tests for the static happens-before analyzer and the lint pass.

Covers the vector-clock/epoch primitives, the barrier-episode clock
propagation, pair classification, the group-based race scan against a
naive all-pairs reference, and every lint rule id.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    BarrierStallError,
    Epoch,
    VectorClock,
    access_races,
    build_hb,
    lint_config,
    lint_program,
    max_severity,
    region_conflicts,
)
from repro.analysis.hb import (
    HB_ORDERED,
    LOCK_PROTECTED,
    NO_CONFLICT,
    RACE,
    SAME_THREAD,
)
from repro.analysis.lint import RULES, SEVERITIES
from repro.common.config import AimConfig, SystemConfig
from repro.synth import RACY_SUITE, SUITE, build_workload
from repro.trace import Program, ThreadTrace, TraceBuilder
from repro.trace.events import ACQUIRE, BARRIER, EVENT_DTYPE, RELEASE, WRITE


def rule_ids(findings):
    return {f.rule_id for f in findings}


def raw_trace(rows):
    """Build a ThreadTrace from raw (kind, addr, size, sync, gap) tuples,
    bypassing the builder's discipline checks (for malformed-input rules)."""
    events = np.zeros(len(rows), dtype=EVENT_DTYPE)
    for i, row in enumerate(rows):
        events[i] = row
    return ThreadTrace(events)


class TestVectorClock:
    def test_fresh_clock_is_zero(self):
        vc = VectorClock(3)
        assert [vc[i] for i in range(3)] == [0, 0, 0]

    def test_tick_and_join(self):
        a, b = VectorClock(3), VectorClock(3)
        a.tick(0)
        a.tick(0)
        b.tick(1)
        b.join(a)
        assert b.freeze() == (2, 1, 0)
        assert b.dominates(a)
        assert not a.dominates(b)

    def test_copy_is_independent(self):
        a = VectorClock(2)
        c = a.copy()
        c.tick(0)
        assert a[0] == 0 and c[0] == 1

    def test_epoch_precedes(self):
        # Epoch 1@0 precedes a clock only once it has seen thread 0
        # advance *past* phase 1.
        assert not Epoch(0, 1).precedes((1, 5))
        assert Epoch(0, 1).precedes((2, 0))


class TestBuildHb:
    def test_phases_count_barrier_arrivals(self):
        t0 = TraceBuilder().read(0).barrier(0).read(64).barrier(0).read(128).build()
        t1 = TraceBuilder().barrier(0).barrier(0).build()
        hb = build_hb(Program([t0, t1]))
        assert hb.phase_of[0].tolist() == [0, 1, 1, 2, 2]
        assert len(hb.clocks[0]) == 3  # phases 0, 1, 2

    def test_barrier_orders_across_threads(self):
        t0 = TraceBuilder().write(0).barrier(0).build()
        t1 = TraceBuilder().barrier(0).write(0).build()
        hb = build_hb(Program([t0, t1]))
        # t0's pre-barrier write (event 0) vs t1's post-barrier write
        assert hb.ordered(0, 0, 1, 1)

    def test_pre_barrier_events_unordered(self):
        t0 = TraceBuilder().write(0).barrier(0).build()
        t1 = TraceBuilder().write(0).barrier(0).build()
        hb = build_hb(Program([t0, t1]))
        assert not hb.ordered(0, 0, 1, 0)

    def test_transitive_order_through_third_thread(self):
        # t0 -> (barrier 0 with t1) ... t1 -> (barrier 1 with t2): t0's
        # pre-b0 work is ordered before t2's post-b1 work transitively.
        t0 = TraceBuilder().write(0).barrier(0).build()
        t1 = TraceBuilder().barrier(0).barrier(1).build()
        t2 = TraceBuilder().barrier(1).write(0).build()
        hb = build_hb(Program([t0, t1, t2]))
        assert hb.ordered(0, 0, 2, 1)

    def test_stall_on_crossed_barrier_order(self):
        t0 = TraceBuilder().barrier(0).barrier(1).build()
        t1 = TraceBuilder().barrier(1).barrier(0).build()
        with pytest.raises(BarrierStallError) as err:
            build_hb(Program([t0, t1]))
        assert err.value.stalled == {0: 0, 1: 1}

    def test_stall_on_missing_participant(self):
        t0 = TraceBuilder().barrier(0).build()
        t1 = TraceBuilder().read(0).build()
        program = Program(
            [t0, t1], barrier_participants={0: frozenset({0, 1})}
        )
        with pytest.raises(BarrierStallError):
            build_hb(program)

    def test_locksets_cover_critical_sections(self):
        t0 = (
            TraceBuilder()
            .read(0)                 # event 0: no locks
            .acquire(7)              # event 1
            .write(64)               # event 2: holds {7}
            .release(7)              # event 3
            .read(128)               # event 4: no locks
            .build()
        )
        hb = build_hb(Program([t0]))
        sets = [hb.locksets[i] for i in hb.lockset_of[0].tolist()]
        assert sets[0] == frozenset()
        assert sets[2] == frozenset({7})
        assert sets[4] == frozenset()


class TestClassify:
    def build(self, t0, t1):
        program = Program([t0, t1])
        return program, build_hb(program)

    def test_same_thread(self):
        t0 = TraceBuilder().write(0).write(0).build()
        t1 = TraceBuilder().read(64).build()
        program, hb = self.build(t0, t1)
        assert hb.classify(program, 0, 0, 0, 1) == SAME_THREAD

    def test_read_read_no_conflict(self):
        t0 = TraceBuilder().read(0).build()
        t1 = TraceBuilder().read(0).build()
        program, hb = self.build(t0, t1)
        assert hb.classify(program, 0, 0, 1, 0) == NO_CONFLICT

    def test_disjoint_bytes_no_conflict(self):
        t0 = TraceBuilder().write(0, 8).build()
        t1 = TraceBuilder().write(8, 8).build()
        program, hb = self.build(t0, t1)
        assert hb.classify(program, 0, 0, 1, 0) == NO_CONFLICT

    def test_barrier_ordered(self):
        t0 = TraceBuilder().write(0).barrier(0).build()
        t1 = TraceBuilder().barrier(0).write(0).build()
        program, hb = self.build(t0, t1)
        assert hb.classify(program, 0, 0, 1, 1) == HB_ORDERED

    def test_lock_protected(self):
        t0 = TraceBuilder().acquire(5).write(0).release(5).build()
        t1 = TraceBuilder().acquire(5).write(0).release(5).build()
        program, hb = self.build(t0, t1)
        assert hb.classify(program, 0, 1, 1, 1) == LOCK_PROTECTED

    def test_different_locks_race(self):
        t0 = TraceBuilder().acquire(5).write(0).release(5).build()
        t1 = TraceBuilder().acquire(6).write(0).release(6).build()
        program, hb = self.build(t0, t1)
        assert hb.classify(program, 0, 1, 1, 1) == RACE

    def test_plain_race(self):
        t0 = TraceBuilder().write(0).build()
        t1 = TraceBuilder().read(0).build()
        program, hb = self.build(t0, t1)
        assert hb.classify(program, 0, 0, 1, 0) == RACE


class TestRaceScan:
    def test_write_write_race_found(self):
        t0 = TraceBuilder().write(0, 8).build()
        t1 = TraceBuilder().write(0, 8).build()
        races = access_races(Program([t0, t1]))
        assert len(races) == 1
        race = races[0]
        assert race.line == 0
        assert race.byte_mask == 0xFF
        assert (race.first_thread, race.second_thread) == (0, 1)
        assert race.first_is_write and race.second_is_write

    def test_race_normalization(self):
        # Whatever the internal group order, first side has the smaller
        # (thread, region).
        t0 = TraceBuilder().read(0).build()
        t1 = TraceBuilder().write(0).build()
        (race,) = access_races(Program([t0, t1]))
        assert (race.first_thread, race.first_region) <= (
            race.second_thread,
            race.second_region,
        )

    def test_barrier_separated_clean(self):
        t0 = TraceBuilder().write(0).barrier(0).build()
        t1 = TraceBuilder().barrier(0).write(0).build()
        assert access_races(Program([t0, t1])) == []

    def test_common_lock_clean(self):
        t0 = TraceBuilder().acquire(1).write(0).release(1).build()
        t1 = TraceBuilder().acquire(1).write(0).release(1).build()
        assert access_races(Program([t0, t1])) == []

    def test_private_lines_skipped(self):
        t0 = TraceBuilder().write(0).write(64).build()
        t1 = TraceBuilder().write(128).write(192).build()
        assert access_races(Program([t0, t1])) == []

    def test_region_lift_merges_masks(self):
        t0 = TraceBuilder().write(0, 4).write(8, 4).build()
        t1 = TraceBuilder().write(0, 4).write(8, 4).build()
        program = Program([t0, t1])
        conflicts = region_conflicts(program)
        assert len(conflicts) == 1
        (conflict,) = conflicts.values()
        assert conflict.byte_mask == 0x0F0F
        assert conflict.kind() == "ww"
        assert conflict.key == (0, 0, 0, 1, 0)


NAIVE_CAP = 60  # events per thread the naive reference can afford


def naive_races(program, line_size=64):
    """O(n^2) all-pairs reference using only HbIndex.classify."""
    hb = build_hb(program)
    found = set()
    for t1, tr1 in enumerate(program.traces):
        for t2 in range(t1 + 1, program.num_threads):
            tr2 = program.traces[t2]
            for e1 in np.nonzero(tr1.kinds <= WRITE)[0].tolist():
                for e2 in np.nonzero(tr2.kinds <= WRITE)[0].tolist():
                    if hb.classify(program, t1, e1, t2, e2, line_size) == RACE:
                        found.add((t1, e1, t2, e2))
    return found


random_ops = st.lists(
    st.tuples(
        st.integers(0, 3),   # 0=read 1=write 2=lock/unlock 3=barrier
        st.integers(0, 7),   # line offset in the shared pool
        st.integers(0, 1),   # lock / barrier choice
    ),
    min_size=1,
    max_size=25,
)


def random_program(per_thread_ops):
    builders = [TraceBuilder() for _ in per_thread_ops]
    barrier_uses = [[] for _ in per_thread_ops]
    for tid, (builder, ops) in enumerate(zip(builders, per_thread_ops)):
        for op, offset, which in ops:
            if op == 0:
                builder.read(0x1000 + offset * 8, 8)
            elif op == 1:
                builder.write(0x1000 + offset * 8, 8)
            elif op == 2:
                builder.acquire(50 + which)
                builder.write(0x1000 + offset * 8, 8)
                builder.release(50 + which)
            else:
                barrier_uses[tid].append(0)
                builder.barrier(0)
    # Equalize barrier arrival counts so episodes always complete.
    most = max(len(u) for u in barrier_uses)
    for builder, uses in zip(builders, barrier_uses):
        for _ in range(most - len(uses)):
            builder.barrier(0)
    return Program([b.build() for b in builders], name="random")


class TestScanMatchesNaiveReference:
    @given(ops0=random_ops, ops1=random_ops)
    @settings(max_examples=50, deadline=None)
    def test_two_threads(self, ops0, ops1):
        program = random_program([ops0, ops1])
        fast = {
            (r.first_thread, r.first_event, r.second_thread, r.second_event)
            for r in access_races(program)
        }
        assert fast == naive_races(program)

    @given(ops0=random_ops, ops1=random_ops, ops2=random_ops)
    @settings(max_examples=25, deadline=None)
    def test_three_threads(self, ops0, ops1, ops2):
        program = random_program([ops0, ops1, ops2])
        fast = {
            (r.first_thread, r.first_event, r.second_thread, r.second_event)
            for r in access_races(program)
        }
        assert fast == naive_races(program)


class TestSuiteWorkloads:
    @pytest.mark.parametrize("name", SUITE)
    def test_conflict_free_suite_has_no_races(self, name):
        program = build_workload(name, num_threads=4, seed=1, scale=0.1)
        assert region_conflicts(program) == {}

    @pytest.mark.parametrize("name", RACY_SUITE)
    def test_racy_suite_has_races(self, name):
        program = build_workload(name, num_threads=4, seed=1, scale=0.1)
        assert region_conflicts(program)

    @pytest.mark.parametrize("name", SUITE)
    def test_suite_lints_clean_of_errors(self, name):
        program = build_workload(name, num_threads=4, seed=1, scale=0.1)
        findings = lint_program(program, SystemConfig(num_cores=4))
        assert max_severity(findings) in (None, "info")


class TestLintRules:
    def test_registry_is_consistent(self):
        assert len(RULES) == 19
        for rule_id, rule in RULES.items():
            assert rule.rule_id == rule_id
            assert rule.severity in SEVERITIES
            assert rule.hint

    def test_l101_lock_order_inversion(self):
        t0 = (
            TraceBuilder().acquire(1).acquire(2).release(2).release(1).build()
        )
        t1 = (
            TraceBuilder().acquire(2).acquire(1).release(1).release(2).build()
        )
        findings = lint_program(Program([t0, t1]))
        assert "L101" in rule_ids(findings)

    def test_nested_but_consistent_order_clean(self):
        t0 = (
            TraceBuilder().acquire(1).acquire(2).release(2).release(1).build()
        )
        t1 = (
            TraceBuilder().acquire(1).acquire(2).release(2).release(1).build()
        )
        assert "L101" not in rule_ids(lint_program(Program([t0, t1])))

    def test_l102_self_acquire(self):
        t0 = TraceBuilder().acquire(3).acquire(3).release(3).release(3).build()
        findings = lint_program(Program([t0]))
        assert "L102" in rule_ids(findings)

    def test_l103_release_unheld(self):
        t0 = raw_trace([(RELEASE, 0, 0, 3, 0)])
        assert "L103" in rule_ids(lint_program(Program([t0])))

    def test_l104_held_at_end(self):
        t0 = raw_trace([(ACQUIRE, 0, 0, 3, 0)])
        assert "L104" in rule_ids(lint_program(Program([t0])))

    def test_b201_barrier_while_locked(self):
        t0 = raw_trace([
            (ACQUIRE, 0, 0, 3, 0), (BARRIER, 0, 0, 0, 0), (RELEASE, 0, 0, 3, 0),
        ])
        assert "B201" in rule_ids(lint_program(Program([t0])))

    def test_b202_unequal_counts(self):
        t0 = TraceBuilder().barrier(0).barrier(0).build()
        t1 = TraceBuilder().barrier(0).build()
        assert "B202" in rule_ids(lint_program(Program([t0, t1])))

    def test_b203_crossed_order_deadlock(self):
        t0 = TraceBuilder().barrier(0).barrier(1).build()
        t1 = TraceBuilder().barrier(1).barrier(0).build()
        assert "B203" in rule_ids(lint_program(Program([t0, t1])))

    def test_b204_single_participant(self):
        t0 = TraceBuilder().barrier(0).build()
        t1 = TraceBuilder().read(0).build()
        assert "B204" in rule_ids(lint_program(Program([t0, t1])))

    def test_a301_metadata_straddle(self):
        t0 = TraceBuilder().write(30, 4).build()  # bytes 30..33 cross 32
        cfg = SystemConfig(num_cores=2, metadata_bytes=32)
        findings = lint_program(Program([t0]), cfg)
        assert "A301" in rule_ids(findings)
        aligned = TraceBuilder().write(32, 4).build()
        assert "A301" not in rule_ids(lint_program(Program([aligned]), cfg))

    def test_c401_arc_flags_under_mesi(self):
        cfg = SystemConfig(protocol="mesi", arc_write_through=True)
        assert "C401" in rule_ids(lint_config(cfg))

    def test_c402_custom_aim_under_ce(self):
        cfg = SystemConfig(protocol="ce", aim=AimConfig(size=256 * 1024))
        assert "C402" in rule_ids(lint_config(cfg))
        assert "C402" not in rule_ids(
            lint_config(SystemConfig(protocol="ce+", aim=AimConfig(size=256 * 1024)))
        )

    def test_c403_halt_under_mesi(self):
        cfg = SystemConfig(protocol="mesi", halt_on_conflict=True)
        assert "C403" in rule_ids(lint_config(cfg))

    def test_c404_owned_state_under_arc(self):
        cfg = SystemConfig(protocol="arc", use_owned_state=True)
        assert "C404" in rule_ids(lint_config(cfg))

    def test_c405_directory_under_arc(self):
        cfg = SystemConfig(protocol="arc", directory_entries_per_bank=512)
        assert "C405" in rule_ids(lint_config(cfg))

    def test_c406_idle_cores(self):
        program = Program([TraceBuilder().read(0).build()])
        cfg = SystemConfig(num_cores=4)
        assert "C406" in rule_ids(lint_config(cfg, program))

    def test_c407_oversubscribed(self):
        traces = [TraceBuilder().read(0).build() for _ in range(4)]
        cfg = SystemConfig(num_cores=2)
        findings = lint_config(cfg, Program(traces))
        assert "C407" in rule_ids(findings)
        assert max_severity(findings) == "error"

    def test_default_config_is_clean(self):
        program = Program([
            TraceBuilder().read(0).build() for _ in range(4)
        ])
        assert lint_program(program, SystemConfig(num_cores=4)) == []

    def test_findings_sorted_errors_first(self):
        t0 = raw_trace([
            (ACQUIRE, 0, 0, 3, 0), (BARRIER, 0, 0, 0, 0), (RELEASE, 0, 0, 3, 0),
        ])
        t1 = TraceBuilder().read(0).build()
        findings = lint_program(Program([t0, t1]))
        severities = [SEVERITIES.index(f.severity) for f in findings]
        assert severities == sorted(severities, reverse=True)

    def test_max_severity_empty(self):
        assert max_severity([]) is None


class TestCaptureShapeRules:
    """CAP5xx rules fire only on programs named ``capture*``."""

    @staticmethod
    def _serialized(name="capture-test"):
        # two threads, two shared lines, every shared access under lock 7
        def one_thread():
            return (
                TraceBuilder()
                .acquire(7).read(0x1000).write(0x1040).release(7)
                .build()
            )
        return Program([one_thread(), one_thread()], name=name)

    def test_cap501_fully_serialized(self):
        findings = lint_program(self._serialized())
        assert "CAP501" in rule_ids(findings)

    def test_cap501_needs_capture_prefix(self):
        findings = lint_program(self._serialized(name="synth-test"))
        assert not any(r.startswith("CAP") for r in rule_ids(findings))

    def test_cap501_not_fired_when_one_access_unlocked(self):
        t0 = (
            TraceBuilder()
            .acquire(7).read(0x1000).write(0x1040).release(7)
            .build()
        )
        t1 = TraceBuilder().read(0x1000).read(0x1040).build()
        findings = lint_program(Program([t0, t1], name="capture-test"))
        assert "CAP501" not in rule_ids(findings)

    def test_cap502_disjoint_threads(self):
        t0 = TraceBuilder().read(0x1000).write(0x1000).build()
        t1 = TraceBuilder().read(0x2000).write(0x2000).build()
        findings = lint_program(Program([t0, t1], name="capture-test"))
        assert "CAP502" in rule_ids(findings)
        assert "CAP501" not in rule_ids(findings)

    def test_cap503_single_shared_line(self):
        t0 = TraceBuilder().write(0x1000).read(0x3000).build()
        t1 = TraceBuilder().write(0x1008).read(0x4000).build()
        findings = lint_program(Program([t0, t1], name="capture-test"))
        assert "CAP503" in rule_ids(findings)
        assert "CAP502" not in rule_ids(findings)

    def test_shipped_capture_workloads_shapes(self):
        from repro.capture.workloads import CAPTURE_WORKLOADS

        by_name = {}
        for name, builder in CAPTURE_WORKLOADS.items():
            program = builder(num_threads=4, seed=1, scale=0.1)
            by_name[name] = {
                r for r in rule_ids(lint_program(program))
                if r.startswith("CAP")
            }
        # the bounded queue really is one-lock serialized; the racy
        # counter really is a one-line contention microbenchmark
        assert by_name["capture-pipeline"] == {"CAP501"}
        assert by_name["capture-racy-counter"] == {"CAP503"}
        assert by_name["capture-histogram"] == set()
        assert by_name["capture-blackscholes"] == set()
        assert by_name["capture-workqueue"] == set()
