"""Protocol-level tests for CE+ (CE with the AIM metadata cache)."""

import pytest

from repro.common.config import AimConfig, CacheConfig, SystemConfig
from repro.core.machine import Machine
from repro.protocols.aim import AimSlice
from repro.protocols.ceplus import CePlusProtocol
from repro.trace.events import ACQUIRE


def make(num_cores=4, aim=None, **cfg_kw):
    cfg = SystemConfig(
        num_cores=num_cores,
        protocol="ce+",
        l1=CacheConfig(size=256, assoc=2, line_size=64),
        aim=aim or AimConfig(),
        **cfg_kw,
    )
    machine = Machine(cfg)
    return machine, CePlusProtocol(machine)


def spill_one(proto, core=0):
    """Touch three same-set lines so the first one's metadata spills."""
    lines = [0x0, 0x80, 0x100]
    for i, line in enumerate(lines):
        proto.access(core, line, 8, True, i)
    return lines


class TestAimAbsorbsMetadata:
    def test_spill_goes_to_aim_not_dram(self):
        machine, proto = spill_one_machine()
        assert machine.stats.metadata_spills == 1
        assert machine.stats.aim_writebacks == 1
        assert machine.dram.metadata_bytes == 0  # on-chip, not off-chip

    def test_conflict_check_hits_aim(self):
        machine, proto = make()
        lines = spill_one(proto, core=0)
        proto.access(1, lines[0], 8, True, 50)
        assert len(machine.stats.conflicts) == 1
        assert machine.stats.aim_hits >= 1
        assert machine.dram.metadata_bytes == 0

    def test_region_clear_stays_on_chip(self):
        machine, proto = make()
        spill_one(proto)
        proto.region_boundary(0, 100, ACQUIRE)
        assert machine.stats.metadata_clears == 1
        assert machine.dram.metadata_bytes == 0

    def test_same_semantics_as_ce(self):
        """CE+ detects exactly the conflicts CE would on this sequence."""
        machine, proto = make()
        lines = spill_one(proto, core=0)
        proto.access(1, lines[0], 8, True, 50)
        proto.access(2, lines[1], 8, False, 60)
        kinds = sorted(c.kind() for c in machine.stats.conflicts)
        assert kinds == ["W-R", "W-W"]


def spill_one_machine():
    machine, proto = make()
    spill_one(proto)
    return machine, proto


class TestAimSlice:
    def make_slice(self, **aim_kw):
        cfg = SystemConfig(num_cores=4, protocol="ce+", aim=AimConfig(**aim_kw))
        machine = Machine(cfg)
        return machine, AimSlice(cfg.aim, cfg.metadata_bytes, machine.dram, machine.stats)

    def test_read_miss_fills_from_dram(self):
        machine, aim = self.make_slice()
        latency = aim.read(0x40, 0)
        assert machine.stats.aim_misses == 1
        assert machine.dram.metadata_bytes_read == 32
        assert latency > aim.cfg.latency

    def test_read_hit_after_fill(self):
        machine, aim = self.make_slice()
        aim.read(0x40, 0)
        latency = aim.read(0x40, 10)
        assert machine.stats.aim_hits == 1
        assert latency == aim.cfg.latency
        assert machine.dram.metadata_bytes_read == 32  # no second fill

    def test_write_allocates_without_fill(self):
        machine, aim = self.make_slice()
        aim.write(0x40, 0)
        assert machine.dram.metadata_bytes == 0  # write-back: nothing off-chip
        aim.read(0x40, 10)
        assert machine.stats.aim_hits == 1

    def test_dirty_eviction_writes_back(self):
        # 1-set AIM: capacity = assoc entries
        machine, aim = self.make_slice(size=8 * 32, assoc=8)
        for i in range(9):
            aim.write(i * 64, i)
        assert machine.stats.aim_evictions == 1
        assert machine.dram.metadata_bytes_written == 32

    def test_clean_eviction_is_silent(self):
        machine, aim = self.make_slice(size=8 * 32, assoc=8)
        for i in range(9):
            aim.read(i * 64, i)  # fills (clean)
        assert machine.stats.aim_evictions == 1
        # 9 fills, no writeback
        assert machine.dram.metadata_bytes_written == 0

    def test_write_through_policy(self):
        machine, aim = self.make_slice(write_through=True)
        aim.write(0x40, 0)
        assert machine.dram.metadata_bytes_written == 32


class TestAimSizeSensitivity:
    def test_small_aim_spills_to_dram(self):
        """A tiny AIM thrashes and produces off-chip metadata traffic a
        big AIM avoids (the AIM-sensitivity figure's mechanism)."""
        small = AimConfig(size=2 * 32, assoc=2)
        machine_small, proto_small = make(aim=small)
        machine_big, proto_big = make()
        for proto in (proto_small, proto_big):
            for i in range(20):  # many distinct spilled lines
                base = i * 0x200
                for j, line in enumerate((base, base + 0x80, base + 0x100)):
                    proto.access(0, line, 8, True, i * 100 + j)
        assert machine_small.dram.metadata_bytes > 0
        assert machine_big.dram.metadata_bytes == 0
