#!/usr/bin/env python3
"""CE+'s Achilles heel: on-chip network pressure under write sharing.

The paper's key observation about CE+ is that the AIM fixes CE's
*off-chip* metadata problem but keeps MESI's eager write-invalidation,
so write-heavy sharing still floods the mesh with invalidations,
forwards and metadata checks — at high core counts links saturate and
runtime suffers.  ARC's self-invalidation substrate sends none of that.

This example runs the false-sharing workload (maximal line ping-pong,
zero true conflicts) at increasing core counts and prints on-chip
traffic, peak link utilization and NoC queueing delay for each system.

Run:  python examples/network_saturation.py            (8/16/32 cores)
      python examples/network_saturation.py --quick    (4/8 cores)
"""

import sys

from repro import ProtocolKind, SystemConfig, compare_protocols
from repro.synth import build_workload

PROTOCOLS = (ProtocolKind.MESI, ProtocolKind.CEPLUS, ProtocolKind.ARC)


def main() -> None:
    quick = "--quick" in sys.argv
    core_counts = (4, 8) if quick else (8, 16, 32)
    scale = 0.3 if quick else 1.0

    for cores in core_counts:
        program = build_workload(
            "false-sharing", num_threads=cores, seed=7, scale=scale
        )
        comparison = compare_protocols(
            SystemConfig(num_cores=cores), program, protocols=PROTOCOLS
        )
        base = comparison.baseline

        print(f"\n=== {cores} cores, {program.num_events():,} events ===")
        print(f"{'protocol':10s} {'runtime':>9s} {'flit-hops':>11s} "
              f"{'peak util':>10s} {'sat windows':>12s} {'queue cyc':>10s}")
        for proto in PROTOCOLS:
            result = comparison.results[proto]
            print(
                f"{proto.value:10s} "
                f"{result.cycles / base.cycles:9.3f} "
                f"{result.flit_hops / max(base.flit_hops, 1):11.3f} "
                f"{result.net.peak_link_utilization:10.3f} "
                f"{result.net.saturated_link_windows:12d} "
                f"{result.net.queue_delay_cycles:10d}"
            )

    print(
        "\nCE+ tracks MESI's invalidation traffic (and adds metadata "
        "messages); ARC's\nself-invalidation keeps the mesh quiet as core "
        "counts grow — the paper's\nheadline argument for rethinking the "
        "coherence substrate."
    )


if __name__ == "__main__":
    main()
