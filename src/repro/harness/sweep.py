"""Generic parameter sweeps.

A thin layer over :func:`repro.core.api.run_program` used by the
sensitivity experiments and available to users exploring the design
space (AIM sizes, core counts, workload parameters).

Sweep points are independent simulations, so they fan out: pass
``jobs``/``cache`` (or a preconfigured
:class:`~repro.harness.executor.Executor`) to run them across worker
processes and serve repeats from the on-disk result cache.  Results are
reassembled in ``values`` order, so a parallel sweep is indistinguishable
from a serial one.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any, Callable

from ..common.config import SystemConfig
from ..core.results import RunResult
from ..trace.program import Program
from .executor import Executor, SimPoint
from .result_cache import ResultCache


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, result) pair.

    Under an executor in ``keep_going`` mode ``result`` may be a
    :class:`~repro.common.errors.PointFailure`; ``ok`` distinguishes the
    two, and consuming a failed point's metrics raises
    :class:`~repro.common.errors.PointFailedError` rather than yielding
    garbage.
    """

    value: Any
    result: RunResult

    @property
    def ok(self) -> bool:
        return getattr(self.result, "ok", True)

    def metric(self, name: str) -> float:
        return self.result.summary()[name]


def sweep(
    values: Iterable[Any],
    make_config: Callable[[Any], SystemConfig],
    make_program: Callable[[Any], Program],
    *,
    executor: Executor | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> list[SweepPoint]:
    """Run the simulator across ``values``.

    ``make_config`` and ``make_program`` map each sweep value to the
    configuration and workload of that point; either may ignore the
    value to hold its axis fixed.  The axes are built serially (they are
    arbitrary callables); the simulations fan out through ``executor``,
    or through a temporary ``Executor(jobs, cache)`` when ``jobs`` or
    ``cache`` is given instead.
    """
    values = list(values)
    points = [
        SimPoint(make_config(value), make_program(value)) for value in values
    ]
    owned = executor is None
    if executor is None:
        executor = Executor(jobs=jobs, cache=cache)
    try:
        results = executor.run_points(points)
    finally:
        if owned:
            executor.close()
    return [
        SweepPoint(value=value, result=result)
        for value, result in zip(values, results)
    ]


def series(points: list[SweepPoint], metric: str) -> list[tuple[Any, float]]:
    """Extract an (x, y) series from sweep points."""
    return [(p.value, p.metric(metric)) for p in points]
