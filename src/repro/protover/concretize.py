"""Dynamic cross-validation of symbolic counterexamples.

A finding from the inductive sweep names an abstract pre-state the
vocabulary can express — but the sweep never proved that state
*reachable*.  Before a finding is trusted it must earn a concrete
witness: a short modelcheck trace program, found by breadth-first
search over real driver runs (with the finding's mutation applied
dynamically), that reproduces the same defect class — the same
invariant violated, or the same oracle bound (completeness /
soundness) broken.

The outcome classification mirrors the staticlint soundness-containment
discipline:

* ``replayed`` — the rendered trace, replayed from scratch through
  ``shrink.parse_trace``/``replay_trace``, reproduces the defect: the
  counterexample is real.
* ``imprecision`` — no trace within the search budget reaches the
  defect: the abstract vocabulary over-approximated.  Visible, not
  fatal.
* ``unsound`` — the search found a witness but its replay does *not*
  reproduce the defect.  The verifier contradicted itself; this is
  test-fatal (exit code 4).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..modelcheck.driver import Driver, Run
from ..modelcheck.invariants import check_state
from ..modelcheck.shrink import minimize, render_trace, replay_trace
from ..modelcheck.workload import MCEvent
from ..trace.events import ACQUIRE, READ, RELEASE, WRITE
from ..verify.oracle import detected_keys, expected_conflicts
from .induct import Finding
from .mutations import MUTATIONS
from .space import LINE, OFFSETS

#: the concrete search alphabet — exactly what ``parse_trace`` can
#: round-trip (no BARRIER, no forced evictions)
ALPHABET: tuple[tuple[int, MCEvent], ...] = tuple(
    (core, event)
    for core in (0, 1)
    for event in (
        *(MCEvent(kind, slot=LINE, offset=offset)
          for kind in (READ, WRITE) for offset in OFFSETS),
        MCEvent(RELEASE),
        MCEvent(ACQUIRE),
    )
)

#: finding kinds a trace program can witness
CONCRETIZABLE = ("invariant", "detection-completeness",
                 "detection-soundness")


def goal_for(finding: Finding) -> Callable[[Run], bool] | None:
    """The defect-class predicate this finding's witness must satisfy."""
    if finding.kind == "invariant":
        name = finding.invariant

        def goal(run: Run) -> bool:
            return any(v.invariant == name for v in check_state(run))

        return goal
    if finding.kind == "detection-completeness":

        def goal(run: Run) -> bool:
            must, _may = expected_conflicts(run.recorder, run.cfg.protocol)
            return bool(must - detected_keys(run.machine.stats.conflicts))

        return goal
    if finding.kind == "detection-soundness":

        def goal(run: Run) -> bool:
            _must, may = expected_conflicts(run.recorder, run.cfg.protocol)
            return bool(detected_keys(run.machine.stats.conflicts) - may)

        return goal
    return None


def _state_key(run: Run) -> tuple:
    return (
        run.protocol.snapshot(),
        tuple(sorted(run.ghost.items())),
        tuple(tuple(sorted(shadow.items())) for shadow in run.shadow),
        tuple(run.boundaries),
    )


def _reaches(driver: Driver, steps, goal) -> bool:
    try:
        run = driver.replay(steps)
    except Exception:  # noqa: BLE001 - a crashing prefix is no witness
        return False
    return goal(run)


def search_witness(
    replay_key: str,
    mutate,
    goal: Callable[[Run], bool],
    *,
    max_depth: int = 6,
    max_nodes: int = 6000,
) -> list | None:
    """Memoized BFS over driver runs; returns a 1-minimal step list."""
    driver = Driver(replay_key, 2, 2, mutate=mutate)
    seen = {_state_key(driver.new_run())}
    queue: deque[tuple] = deque([()])
    nodes = 0
    while queue and nodes < max_nodes:
        prefix = queue.popleft()
        for symbol in ALPHABET:
            nodes += 1
            steps = prefix + (symbol,)
            try:
                run = driver.replay(steps)
            except Exception:  # noqa: BLE001 - dead branch of the search
                continue
            if goal(run):
                return list(minimize(
                    list(steps),
                    lambda seq: _reaches(driver, seq, goal),
                ))
            key = _state_key(run)
            if key not in seen and len(steps) < max_depth:
                seen.add(key)
                queue.append(steps)
    return None


def cross_validate(
    finding: Finding,
    mutation: str | None,
    replay_key: str,
    *,
    max_depth: int = 6,
    max_nodes: int = 6000,
) -> str:
    """Concretize one finding in place; returns the classification."""
    goal = goal_for(finding)
    if goal is None:
        finding.concrete = "imprecision"
        return finding.concrete
    mutate = MUTATIONS[mutation].dynamic if mutation is not None else None
    steps = search_witness(
        replay_key, mutate, goal,
        max_depth=max_depth, max_nodes=max_nodes,
    )
    if steps is None:
        finding.concrete = "imprecision"
        return finding.concrete
    trace = render_trace(steps)
    finding.trace = trace
    # the independent replay: text -> parse_trace -> fresh driver
    try:
        replay = replay_trace(replay_key, 2, 2, trace, mutate=mutate)
        reproduced = goal(replay)
    except Exception:  # noqa: BLE001 - a crashing replay proves nothing
        reproduced = False
    finding.concrete = "replayed" if reproduced else "unsound"
    return finding.concrete
