"""Deterministic fault-injection suite (the ISSUE acceptance criteria).

Marked ``faultinject``: CI runs these in a separate step so chaos
failures are distinguishable from ordinary regressions.  The two load-
bearing proofs:

* *byte-identical with retries* — a sweep run under seeded crashes,
  pickle failures and cache corruption, with a retry budget sized to the
  rates, produces exactly the same results as the fault-free run;
* *exact failure marking with keep-going* — a sweep with unretryable
  hangs completes within its timeout budget and annotates precisely the
  injected points as failed, nothing more, nothing less.
"""

from __future__ import annotations

import hashlib
import time

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError, PointFailure
from repro.harness import Executor, FaultPlan, ResultCache, SimPoint, WorkloadSpec
from repro.harness.faultinject import CRASH_EXIT_STATUS, apply_worker_fault

pytestmark = pytest.mark.faultinject


def make_points(n=6, threads=2, scale=0.05):
    cfg = SystemConfig(num_cores=threads)
    return [
        SimPoint(
            cfg,
            WorkloadSpec.make(
                "lock-counter", num_threads=threads, seed=seed, scale=scale
            ),
        )
        for seed in range(1, n + 1)
    ]


def digest(results):
    """Stable fingerprint of a result list (order-sensitive)."""
    blob = repr([r.summary() for r in results]).encode()
    return hashlib.sha256(blob).hexdigest()


# --------------------------------------------------------------------------
# plan mechanics
# --------------------------------------------------------------------------


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=7, crash_rate=0.3, slow_rate=0.2, pickle_rate=0.1)
        keys = [f"{i:064x}" for i in range(50)]
        first = [plan.decide(k, attempt=1) for k in keys]
        second = [plan.decide(k, attempt=1) for k in keys]
        assert first == second
        assert set(first) <= {None, "crash", "slow", "pickle"}
        assert any(first)  # the rates actually fire at this sample size

    def test_different_seeds_differ(self):
        keys = [f"{i:064x}" for i in range(50)]
        a = [FaultPlan(seed=1, crash_rate=0.5).decide(k, 1) for k in keys]
        b = [FaultPlan(seed=2, crash_rate=0.5).decide(k, 1) for k in keys]
        assert a != b

    def test_attempts_draw_independently(self):
        """Per-attempt independence is what makes retries converge: a
        point doomed on attempt 1 gets fresh odds on attempt 2."""
        plan = FaultPlan(seed=3, crash_rate=0.5)
        keys = [f"{i:064x}" for i in range(64)]
        fates = [(plan.decide(k, 1), plan.decide(k, 2)) for k in keys]
        assert any(a == "crash" and b is None for a, b in fates)

    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "seed=7,crash=0.2,slow=0.05,slow-seconds=5,corrupt=0.2,pickle=0.1"
        )
        assert plan.seed == 7
        assert plan.crash_rate == 0.2
        assert plan.slow_rate == 0.05
        assert plan.slow_seconds == 5
        assert plan.corrupt_rate == 0.2
        assert plan.pickle_rate == 0.1
        assert plan.active and plan.needs_pool
        assert "crash_rate=0.2" in plan.describe()

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("crash=lots")
        with pytest.raises(ConfigError):
            FaultPlan.parse("explode=0.5")
        with pytest.raises(ConfigError):
            FaultPlan.parse("crash=1.5")

    def test_inert_plan_is_inactive(self):
        plan = FaultPlan(seed=9)
        assert not plan.active
        assert not plan.needs_pool
        assert plan.decide("f" * 64, 1) is None
        # inert plans must be free to apply
        apply_worker_fault(plan, "f" * 64, 1, in_pool=False)

    def test_crash_exit_status_is_distinctive(self):
        # the executor relies on this not colliding with common exits
        assert CRASH_EXIT_STATUS not in (0, 1, 2)


# --------------------------------------------------------------------------
# acceptance: byte-identical under chaos with retries
# --------------------------------------------------------------------------


class TestByteIdenticalWithRetries:
    def test_crash_and_pickle_chaos_converges(self):
        """N injected transient faults + a sized retry budget → results
        identical to the fault-free run, with the chaos visible only in
        the manifest's attempt counts."""
        pts = make_points(6)
        with Executor(jobs=2) as clean:
            baseline = clean.run_points(pts)
        plan = FaultPlan(seed=11, crash_rate=0.15, pickle_rate=0.1)
        with Executor(jobs=2, retries=10, fault_plan=plan, backoff=0.01) as ex:
            chaotic = ex.run_points(pts)
        assert digest(chaotic) == digest(baseline)
        assert ex.manifest.retried >= 1, "plan injected nothing; raise rates"
        assert ex.manifest.failed == 0
        assert all(not isinstance(r, PointFailure) for r in chaotic)

    def test_cache_corruption_chaos_converges(self, tmp_path):
        """Corrupt-on-write chaos: every poisoned entry is detected on
        read, evicted, recomputed — the warm reread still matches."""
        pts = make_points(4)
        with Executor(jobs=1) as clean:
            baseline = clean.run_points(pts)
        plan = FaultPlan(seed=5, corrupt_rate=1.0)
        cache = ResultCache(tmp_path)
        with Executor(jobs=1, cache=cache, fault_plan=plan) as writer:
            first = writer.run_points(pts)
        assert digest(first) == digest(baseline)
        reread = ResultCache(tmp_path)
        with Executor(jobs=1, cache=reread) as reader:
            second = reader.run_points(pts)
        assert digest(second) == digest(baseline)
        assert reader.manifest.corrupt_evictions == len(pts)
        assert [e.status for e in reader.manifest.entries] == ["miss"] * len(pts)

    def test_combined_chaos_with_cache(self, tmp_path):
        pts = make_points(5)
        with Executor(jobs=2) as clean:
            baseline = clean.run_points(pts)
        plan = FaultPlan(seed=2, crash_rate=0.15, pickle_rate=0.1,
                         corrupt_rate=0.3)
        with Executor(
            jobs=2, retries=10, fault_plan=plan, backoff=0.01,
            cache=ResultCache(tmp_path),
        ) as ex:
            chaotic = ex.run_points(pts)
        assert digest(chaotic) == digest(baseline)
        assert ex.manifest.failed == 0


# --------------------------------------------------------------------------
# acceptance: exact failure marking with keep-going
# --------------------------------------------------------------------------


class TestKeepGoingMarking:
    def test_hung_points_marked_exactly(self):
        """Seeded hangs + keep_going: the run finishes within the timeout
        budget (never the sleep duration) and the failure set equals the
        injected set exactly."""
        pts = make_points(6)
        plan = FaultPlan(seed=13, slow_rate=0.35, slow_seconds=60)
        injected = {
            p.key() for p in pts if plan.decide(p.key(), attempt=1) == "slow"
        }
        assert injected, "seed injected nothing; pick another"
        assert len(injected) < len(pts), "seed hung everything; pick another"
        start = time.monotonic()
        with Executor(
            jobs=2, point_timeout=1.0, keep_going=True, fault_plan=plan,
            backoff=0.01,
        ) as ex:
            results = ex.run_points(pts)
        elapsed = time.monotonic() - start
        assert elapsed < 30  # bounded by timeouts, not 60s sleeps

        failed = {r.key for r in results if isinstance(r, PointFailure)}
        assert failed == injected
        for result in results:
            if isinstance(result, PointFailure):
                assert result.kind == "timeout"
                assert result.attempts == 1
            else:
                assert result.summary()["cycles"] > 0
        manifest_failed = {
            e.key for e in ex.manifest.entries if e.status == "timeout"
        }
        assert manifest_failed == injected
        assert {f.key for f in ex.point_failures} == injected

    def test_results_align_with_submission_order(self):
        """Partial results stay positional: every surviving index holds
        the same result the fault-free run produced there."""
        pts = make_points(6)
        plan = FaultPlan(seed=13, slow_rate=0.35, slow_seconds=60)
        with Executor(jobs=2) as clean:
            baseline = clean.run_points(pts)
        with Executor(
            jobs=2, point_timeout=1.0, keep_going=True, fault_plan=plan,
            backoff=0.01,
        ) as ex:
            partial = ex.run_points(pts)
        for expected, got, point in zip(baseline, partial, pts):
            if isinstance(got, PointFailure):
                assert got.key == point.key()
            else:
                assert got.summary() == expected.summary()
