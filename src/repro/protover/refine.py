"""Machine-checked refinement: CE+ refines CE refines MESI.

The paper's protocols are deliberately layered: CE adds access-bit
bookkeeping and conflict *detection* on top of plain MESI without
changing a single coherence decision, and CE+ changes only where the
spilled metadata physically lives (the AIM) without changing what the
metadata says.  These are exactly the statements a base-class edit can
silently break, so they are checked transition-by-transition:

* **CE ⊑ MESI** — every invariant-satisfying CE state, projected down
  to bare MESI (masks and metadata dropped), must step to the same
  coherence outcome: identical per-core line states, identical
  directory entry, identical coherence-action counters.
* **CE+ ⊑ CE** — every CE+ state with its AIM residency dropped must
  step to the *fully identical* CE state: line states including masks
  and region tags, directory, metadata table, spill logs, reported
  conflicts, and every counter except the ``aim_*`` family.

The low-side runs are memoized by (projected state, event), so the
cost is one high-side sweep plus one low-side sweep over the projected
quotient — not the product.
"""

from __future__ import annotations

from dataclasses import replace

from .extract import InstrumentedProtocols, load_instrumented
from .induct import (
    Finding,
    _applicable,
    build_instance,
    inv_states,
    run_event,
    _fresh_view,
)
from .space import LINE, MesiState, Slot, events_for

#: coherence-action counters every refinement level must preserve
COHERENCE_COUNTERS = (
    "l1_hits", "l1_misses", "l1_evictions", "l1_writebacks",
    "llc_hits", "llc_misses", "dir_lookups",
    "invalidations_sent", "forwards", "upgrades", "downgrade_writebacks",
)
#: additionally preserved by CE+ over CE (the metadata *content* path)
METADATA_COUNTERS = (
    "metadata_spills", "metadata_fills", "metadata_checks",
    "metadata_clears",
)


def project_to_mesi(state: MesiState) -> MesiState:
    """Forget everything CE added: masks, region tags, metadata."""
    slots = tuple(
        None if slot is None else Slot(slot.state)
        for slot in state.slots
    )
    return MesiState(slots=slots, meta=(None, None), aim=None)


def project_to_ce(state: MesiState) -> MesiState:
    """Forget only the AIM residency."""
    return replace(state, aim=None)


def _decode_coherence(protocol) -> tuple:
    """The MESI-visible portion of a post-state."""
    slots = []
    for core in range(protocol.cfg.num_cores):
        payload = protocol.l1[core].peek(LINE)
        slots.append(None if payload is None else payload.state)
    entry = protocol.directory.get(LINE)
    directory = (
        (-1, 0) if entry is None else (entry.owner, entry.sharers)
    )
    return (tuple(slots), directory)


def _decode_ce(protocol) -> tuple:
    """The full CE-visible portion (masks, metadata, conflicts)."""
    slots = []
    for core in range(protocol.cfg.num_cores):
        payload = protocol.l1[core].peek(LINE)
        slots.append(
            None if payload is None else (
                payload.state, payload.read_mask, payload.write_mask,
                payload.region,
            )
        )
    entry = protocol.directory.get(LINE)
    directory = (-1, 0) if entry is None else (entry.owner, entry.sharers)
    table = tuple(sorted(
        (line, core, e.read_mask, e.write_mask, e.region)
        for line, core, e in protocol.meta_table.items()
    ))
    logs = tuple(frozenset(log) for log in protocol.spill_log)
    conflicts = tuple(sorted(
        (r.line_addr, r.byte_mask, r.first_core, r.first_region,
         r.second_core, r.second_region, r.detected_by)
        for r in protocol.machine.stats.conflicts
    ))
    return (tuple(slots), directory, table, logs, conflicts)


def _counters(stats, names) -> tuple:
    return tuple(getattr(stats, name) for name in names)


def check_refinement(
    high_key: str,
    low_key: str,
    loaded: InstrumentedProtocols | None = None,
) -> list[Finding]:
    """Step every invariant-satisfying ``high_key`` state and its
    projection on ``low_key`` through the shared alphabet; any
    divergence of the low-side-visible outcome is a finding."""
    if loaded is None:
        loaded = load_instrumented()
    if (high_key, low_key) == ("ce", "mesi"):
        project, decode = project_to_mesi, _decode_coherence
        counters = COHERENCE_COUNTERS
    elif (high_key, low_key) == ("ceplus", "ce"):
        project, decode = project_to_ce, _decode_ce
        counters = COHERENCE_COUNTERS + METADATA_COUNTERS
    else:
        raise ValueError(f"no refinement theorem for {high_key}->{low_key}")

    machine_hi, proto_hi = build_instance(high_key, loaded)
    machine_lo, proto_lo = build_instance(low_key, loaded)
    states, _ = inv_states(high_key, loaded, machine_hi, proto_hi)
    events = events_for(high_key)
    findings: list[Finding] = []
    memo: dict[tuple, tuple] = {}

    from .space import apply_state, reset

    for state in states:
        low_state = project(state)
        for event in events:
            if not _applicable(state, event):
                continue
            reset(proto_hi)
            apply_state(proto_hi, state, loaded)
            view = _fresh_view(proto_hi, machine_hi, high_key, state)
            _sig, error = run_event(view, event, loaded.recorder)
            if error is not None:
                continue  # already reported by the inductive sweep
            high_out = (
                decode(proto_hi), _counters(machine_hi.stats, counters)
            )

            memo_key = (low_state, event)
            low_out = memo.get(memo_key)
            if low_out is None:
                reset(proto_lo)
                apply_state(proto_lo, low_state, loaded)
                low_view = _fresh_view(
                    proto_lo, machine_lo, low_key, low_state
                )
                _sig, low_error = run_event(
                    low_view, event, loaded.recorder
                )
                low_out = (
                    ("<error>", low_error) if low_error is not None else
                    (decode(proto_lo),
                     _counters(machine_lo.stats, counters))
                )
                memo[memo_key] = low_out

            if high_out != low_out:
                findings.append(Finding(
                    kind="refinement", protocol=high_key,
                    state_label=state.label(), event_label=event.label(),
                    message=(
                        f"{high_key} diverges from {low_key} on the "
                        f"{low_key}-visible outcome: {high_out!r} vs "
                        f"{low_out!r}"
                    ),
                    state=state, event=event,
                ))
    return findings


#: the refinement pairs checked by the full sweep
REFINEMENT_PAIRS = (("ceplus", "ce"), ("ce", "mesi"))


def check_refinements(
    loaded: InstrumentedProtocols | None = None,
) -> list[Finding]:
    findings: list[Finding] = []
    for high_key, low_key in REFINEMENT_PAIRS:
        findings.extend(check_refinement(high_key, low_key, loaded))
    return findings


__all__ = [
    "COHERENCE_COUNTERS",
    "METADATA_COUNTERS",
    "REFINEMENT_PAIRS",
    "check_refinement",
    "check_refinements",
    "project_to_ce",
    "project_to_mesi",
]
