"""Differential engine-equivalence suite.

The batch engine (``repro.core.batch``) promises *byte-identical* output
to the scalar engine — same stats, same conflict log, same network and
DRAM accounting — on every program.  This suite is the promise's
enforcement: every registered workload crossed with every protocol
(MESI, MOESI, CE, CE+, ARC), plus streamed ``.rtb`` replay, sanitizer-
armed runs, and hypothesis fuzzing aimed at the classifier's boundary
conditions (private-to-shared transitions, region edges, chunk edges).

All comparisons go through :mod:`repro.verify.diffengine`, whose
canonical rendering covers every counter a run produces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ProtocolKind, SystemConfig, TraceBuilder
from repro.core.batch import BatchSimulator
from repro.core.simulator import Simulator
from repro.synth.suite import all_workload_names, build_workload
from repro.trace.binio import BinTraceReader, BinTraceWriter
from repro.trace.program import Program
from repro.verify.diffengine import assert_identical, render_result

THREADS = 4
SCALE = 0.1

#: every protocol the paper models; MOESI is the MESI family with the
#: owned state enabled, so it gets its own config rather than a kind
PROTOCOL_CFGS = {
    "mesi": SystemConfig(num_cores=THREADS, protocol=ProtocolKind.MESI),
    "moesi": SystemConfig(
        num_cores=THREADS, protocol=ProtocolKind.MESI, use_owned_state=True
    ),
    "ce": SystemConfig(num_cores=THREADS, protocol=ProtocolKind.CE),
    "ce+": SystemConfig(num_cores=THREADS, protocol=ProtocolKind.CEPLUS),
    "arc": SystemConfig(num_cores=THREADS, protocol=ProtocolKind.ARC),
}

WORKLOADS = all_workload_names()


@pytest.fixture(scope="module")
def programs():
    """One small build per workload, shared across the protocol matrix
    (traces are immutable; both engines read, never write, them)."""
    return {
        name: build_workload(name, num_threads=THREADS, seed=2, scale=SCALE)
        for name in WORKLOADS
    }


# --------------------------------------------------------------------------
# the full matrix: every workload x every protocol
# --------------------------------------------------------------------------


@pytest.mark.parametrize("proto", PROTOCOL_CFGS)
@pytest.mark.parametrize("name", WORKLOADS)
def test_workload_protocol_matrix(programs, name, proto):
    assert_identical(PROTOCOL_CFGS[proto], programs[name], context=proto)


@pytest.mark.parametrize("proto", PROTOCOL_CFGS)
@pytest.mark.parametrize(
    "name", ["lock-counter", "racy-writers", "capture-racy-counter"]
)
def test_sanitize_armed_batch(programs, name, proto):
    """``--sanitize`` must hold on the batch engine too: the bulk path
    re-runs the line-scoped invariant checkers over every line a run
    touches, and the armed run must still be byte-identical."""
    assert_identical(
        PROTOCOL_CFGS[proto], programs[name], sanitize=True, context=f"{proto}+san"
    )


@pytest.mark.parametrize("name", WORKLOADS)
def test_streamed_rtb_replay(tmp_path, programs, name):
    """Batch on a streamed ``.rtb`` cursor (tiny chunks, so runs span
    chunk edges) must match scalar on the in-memory program."""
    prog = programs[name]
    path = tmp_path / f"{name}.rtb"
    with BinTraceWriter(
        path, prog.num_threads, name=prog.name, chunk_events=96
    ) as w:
        for tid, trace in enumerate(prog.traces):
            w.append_trace(tid, trace)
    cfg = PROTOCOL_CFGS["ce+"]
    scalar = render_result(Simulator(cfg, prog).run())
    reader = BinTraceReader(path)
    try:
        streamed = reader.stream_program()
        batch = render_result(BatchSimulator(cfg, streamed).run())
    finally:
        reader.close()
    assert batch == scalar


def test_moesi_actually_uses_owned_state(programs):
    """Guard the matrix itself: the MOESI config must not silently be
    plain MESI, or the moesi column proves nothing."""
    assert PROTOCOL_CFGS["moesi"].use_owned_state
    assert not PROTOCOL_CFGS["mesi"].use_owned_state


# --------------------------------------------------------------------------
# hypothesis fuzzing of the classifier's boundary conditions
# --------------------------------------------------------------------------

#: a deliberately tiny address pool so random programs constantly hit
#: the interesting boundaries: lines that flip private -> shared, lines
#: read by all but written by one, and false sharing within a line
_LINES = [0x1000, 0x1040, 0x1080, 0x10C0, 0x2000, 0x2040]

_op = st.tuples(
    st.integers(0, len(_LINES) - 1),  # line index
    st.integers(0, 56),  # offset in line
    st.sampled_from([1, 2, 4, 8]),  # access size
    st.booleans(),  # is write
    st.integers(0, 3),  # gap cycles
)

_sync = st.sampled_from(["none", "lock"])


def _fuzz_program(thread_ops, syncs):
    """Build a 2-thread program from drawn op lists, wrapping some
    accesses in acquire/release pairs so region edges land mid-stream
    (barriers stay out of the fuzz: unmatched counts deadlock)."""
    traces = []
    for tid, ops in enumerate(thread_ops):
        b = TraceBuilder()
        for i, (li, off, size, iswr, gap) in enumerate(ops):
            kind = syncs[(tid * 7 + i) % len(syncs)] if syncs else "none"
            if kind == "lock":
                b.acquire(1)
            addr = _LINES[li] + min(off, 64 - size)
            if iswr:
                b.write(addr, size=size, gap=gap)
            else:
                b.read(addr, size=size, gap=gap)
            if kind == "lock":
                b.release(1)
        traces.append(b.build())
    return Program(traces, name="fuzz")


@settings(max_examples=40, deadline=None)
@given(
    ops0=st.lists(_op, min_size=1, max_size=60),
    ops1=st.lists(_op, min_size=1, max_size=60),
    syncs=st.lists(_sync, min_size=1, max_size=4),
)
def test_fuzz_classifier_boundaries(ops0, ops1, syncs):
    """Random 2-thread interleavings over a tiny line pool: every class
    transition the classifier can produce (private each way, read-only
    shared, contended, false sharing) shows up here, with region edges
    scattered through the runs."""
    prog = _fuzz_program([ops0, ops1], syncs)
    for proto in ("mesi", "ce+", "arc"):
        cfg = PROTOCOL_CFGS[proto].with_cores(2)
        assert_identical(cfg, prog, context=f"fuzz:{proto}")


@settings(max_examples=15, deadline=None)
@given(
    ops0=st.lists(_op, min_size=8, max_size=80),
    ops1=st.lists(_op, min_size=8, max_size=80),
    chunk=st.integers(4, 48),
)
def test_fuzz_chunk_edges(tmp_path_factory, ops0, ops1, chunk):
    """The same fuzzed programs streamed through ``.rtb`` with a drawn
    (tiny) chunk size: fast-path runs and contended stretches must hand
    off correctly across window boundaries at any alignment."""
    prog = _fuzz_program([ops0, ops1], [])
    path = tmp_path_factory.mktemp("rtb") / "fuzz.rtb"
    with BinTraceWriter(path, 2, name="fuzz", chunk_events=chunk) as w:
        for tid, trace in enumerate(prog.traces):
            w.append_trace(tid, trace)
    cfg = PROTOCOL_CFGS["ce+"].with_cores(2)
    scalar = render_result(Simulator(cfg, prog).run())
    reader = BinTraceReader(path)
    try:
        batch = render_result(BatchSimulator(cfg, reader.stream_program()).run())
    finally:
        reader.close()
    assert batch == scalar


def test_private_to_shared_transition_exact():
    """Directed version of the nastiest boundary: thread 0 hammers a
    line in what looks like a private phase, then thread 1 starts
    touching it.  Whole-program classification calls it contended (or
    read-only shared), so even the early "private-looking" accesses must
    flow through the protocol model — equivalence catches any engine
    that fast-paths the prefix."""
    line = 0x4000
    b0 = TraceBuilder()
    for i in range(200):
        b0.write(line + (i % 8) * 8, size=8, gap=1)
    b0.barrier(0)
    b0.read(line, size=8)
    b1 = TraceBuilder()
    for i in range(50):
        b1.read(0x8000 + (i % 4) * 8, size=8, gap=1)
    b1.barrier(0)
    b1.read(line + 8, size=8)
    prog = Program([b0.build(), b1.build()], name="priv-to-shared")
    for proto, cfg in PROTOCOL_CFGS.items():
        assert_identical(cfg.with_cores(2), prog, context=f"p2s:{proto}")


def test_region_edge_mid_run():
    """Region boundaries (release/acquire) interleaved with long
    fast-path-eligible stretches: the sync events are residue and must
    split the bulk runs without perturbing region bookkeeping."""
    b0 = TraceBuilder()
    b1 = TraceBuilder()
    for b, base in ((b0, 0x10000), (b1, 0x20000)):
        for rep in range(6):
            for i in range(40):
                b.write(base + (i % 16) * 8, size=8, gap=1)
            b.acquire(9)
            b.read(0x30000, size=8)
            b.release(9)
    prog = Program([b0.build(), b1.build()], name="region-edges")
    for proto, cfg in PROTOCOL_CFGS.items():
        assert_identical(cfg.with_cores(2), prog, context=f"edges:{proto}")


def test_render_covers_all_stats_fields():
    """The canonical rendering must mention every Stats field — if a
    counter is added and not rendered, the whole suite silently stops
    proving anything about it."""
    from repro.core.stats import Stats

    prog = build_workload("lock-counter", num_threads=2, seed=1, scale=0.05)
    text = render_result(Simulator(SystemConfig(num_cores=2), prog).run())
    for name in Stats.__dataclass_fields__:
        if name == "conflicts":
            assert "conflicts:" in text
        else:
            assert f"stats.{name}:" in text, name


def test_racy_workload_conflicts_render_identically(programs):
    """Conflict *records* (not just counts) must match: the rendering
    includes every field of every ConflictRecord in order."""
    for proto in ("ce", "ce+", "arc"):
        text = assert_identical(
            PROTOCOL_CFGS[proto], programs["racy-writers"], context=proto
        )
        assert "conflict[0]:" in text  # racy workload really does conflict


def test_forced_residue_is_behavior_preserving(programs):
    """The divergence-debugging knob: demoting fast-path lines to the
    residue tier must never change results (docs/ENGINE.md bisection
    workflow depends on this)."""
    prog = programs["stencil-ocean"]
    cfg = PROTOCOL_CFGS["ce+"]
    baseline = render_result(BatchSimulator(cfg, prog).run())
    sim = BatchSimulator(cfg, prog)
    lines = sim.classification.lines
    forced = [int(a) for a in lines[:: max(1, len(lines) // 16)]]
    demoted = BatchSimulator(cfg, prog, force_residue_lines=forced)
    assert render_result(demoted.run()) == baseline
    everything = BatchSimulator(
        cfg, prog, force_residue_lines=[int(a) for a in lines]
    )
    assert render_result(everything.run()) == baseline


def test_classifier_codes_vectorized_consistency(programs):
    """codes_for must agree with code_of on every line, plus on lines
    the program never touches (both say CONTENDED)."""
    from repro.core.batch import CONTENDED, classify_program

    prog = programs["false-sharing"]
    cls = classify_program(prog, 64)
    probe = np.concatenate(
        [cls.lines, np.asarray([0xDEAD000, 0xBEEF0040], dtype=np.uint64)]
    )
    vec = cls.codes_for(probe)
    for line, code in zip(probe.tolist(), vec.tolist()):
        assert cls.code_of(int(line)) == code
    assert cls.code_of(0xDEAD000) == CONTENDED
