"""Hierarchical barrier-phased reduction ("fmm/radix-like").

Each thread computes a private partial result, then a log-depth tree
reduction combines them: at level *k*, thread *i* (with the low *k+1*
bits zero) reads partner *i + 2^k*'s partial and accumulates into its
own, with a barrier between levels.  The cross-thread traffic is
write->read strictly ordered by barriers (conflict-free), the sharing
partner changes every level, and the reduction lines are touched by
progressively fewer cores — a sharing pattern none of the other suite
entries exhibits.
"""

from __future__ import annotations

from ..common.rng import make_rng
from ..trace.program import Program
from .base import scaled, workload
from .patterns import AddressSpace, TraceAssembler, random_span, strided_span


@workload("reduction-fmm")
def generate(
    num_threads: int,
    seed: int,
    scale: float,
    *,
    rounds: int = 12,
    partial_words: int = 16,
    compute_ops: int = 120,
    gap: int = 3,
) -> Program:
    rounds = scaled(rounds, scale)
    space = AddressSpace()
    # one line-aligned partial-result block per thread
    partial_bytes = max(64, partial_words * 8)
    partials = space.alloc_per_thread(num_threads, partial_bytes)
    inputs = space.alloc_per_thread(num_threads, 64 * 1024)

    levels = max(1, (num_threads - 1).bit_length())

    traces = []
    for tid in range(num_threads):
        rng = make_rng(seed, "reduction", tid)
        asm = TraceAssembler()
        my_partial = strided_span(partials[tid], partial_words)
        for _round in range(rounds):
            # local compute phase: read private input, write own partial
            asm.accesses(
                random_span(rng, inputs[tid], 64 * 1024, compute_ops),
                rng.random(compute_ops) < 0.2,
                gap=gap,
            )
            asm.writes(my_partial)
            asm.barrier(0)
            # tree reduction: level k combines partner i + 2^k into i
            for level in range(levels):
                stride = 1 << level
                if tid % (stride * 2) == 0 and tid + stride < num_threads:
                    partner = strided_span(partials[tid + stride], partial_words)
                    asm.reads(partner, gap=gap)
                    asm.writes(my_partial)
                asm.barrier(0)
        traces.append(asm.build())
    return Program(traces, name="reduction-fmm")
