#!/usr/bin/env python3
"""Capture an under-synchronized counter and check detectors vs oracle.

The `capture-racy-counter` workload increments a shared counter from
every thread but only takes the lock on every fourth increment — the
rest are bare read-modify-writes.  The capture session's
``switch_every`` preemption interleaves the threads between accesses,
so the recorded schedule really does overlap the racy regions.

Replaying under CE / CE+ / ARC shows the detectors firing; the
ground-truth oracle (which recomputes conflicts from the schedule log,
independent of any protocol) confirms every report is a true overlap:

    detector reports  ⊆  oracle overlap conflicts

Run:  python examples/capture/racy_counter.py
"""

from repro.common.config import SystemConfig
from repro.core.simulator import Simulator
from repro.synth import build_workload
from repro.verify import ScheduleRecorder, detected_keys, overlap_conflicts


def main() -> None:
    program = build_workload(
        "capture-racy-counter", num_threads=4, seed=2, scale=0.4
    )
    stats = program.stats()
    print(f"captured {program.name}: {stats.num_events:,} events, "
          f"{stats.num_regions} regions, {stats.shared_lines} shared line(s)")

    for protocol in ("ce", "ce+", "arc"):
        recorder = ScheduleRecorder()
        cfg = SystemConfig(num_cores=4, protocol=protocol)
        result = Simulator(cfg, program, recorder=recorder).run()
        overlap = overlap_conflicts(recorder)
        detected = detected_keys(result.stats.conflicts)
        contained = detected <= set(overlap)
        print(f"  {protocol:4s}: {len(detected)} conflicts reported, "
              f"{len(overlap)} true overlaps, detected ⊆ overlap: {contained}")


if __name__ == "__main__":
    main()
