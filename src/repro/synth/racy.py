"""Racy workloads — programs with genuine region conflicts.

These drive the conflicts-detected table: threads perform mostly
well-structured private/lock-protected work, but with a configurable
probability an iteration also touches one of a few *racy words* without
synchronization.  Different threads' regions overlap freely, so
overlapping-byte accesses (at least one a write) are true region
conflicts that every conflict-detecting protocol must report and MESI
silently allows.

Two variants:

* ``racy-writers`` — racy accesses are writes (W-W and W-R conflicts).
* ``racy-readers`` — one thread writes the racy words, the others read
  them (R-W conflicts only).
"""

from __future__ import annotations

from ..common.rng import make_rng
from ..trace.program import Program
from .base import scaled, workload
from .patterns import AddressSpace, TraceAssembler, random_span, strided_span

_REGION_LOCK_BASE = 2000


def _generate(
    num_threads: int,
    seed: int,
    scale: float,
    *,
    writers_race: bool,
    iterations: int,
    racy_words: int,
    race_period: int,
    private_ops: int,
) -> Program:
    iters = scaled(iterations, scale)
    space = AddressSpace()
    racy_addrs = strided_span(space.alloc_lines((racy_words * 8 + 63) // 64), racy_words)
    privates = space.alloc_per_thread(num_threads, 32 * 1024)

    traces = []
    for tid in range(num_threads):
        rng = make_rng(seed, "racy", tid)
        asm = TraceAssembler()
        my_lock = _REGION_LOCK_BASE + tid
        for it in range(iters):
            # bound the region with an uncontended private lock
            asm.acquire(my_lock)
            asm.release(my_lock)
            if it % race_period == 0:
                # Every thread touches the same racy word in the same
                # iteration: the loosely-synchronized regions overlap in
                # time, so the conflict manifests robustly even at small
                # scales and for eager (CE-style) detection windows.
                word = (it // race_period) % racy_words
                addr = int(racy_addrs[word])
                if writers_race or tid == 0:
                    asm.write(addr)
                else:
                    asm.read(addr)
            asm.accesses(
                random_span(rng, privates[tid], 32 * 1024, private_ops),
                rng.random(private_ops) < 0.4,
                gap=1,
            )
        traces.append(asm.build())
    return Program(traces, name="racy")


@workload("racy-writers")
def racy_writers(
    num_threads: int,
    seed: int,
    scale: float,
    *,
    iterations: int = 200,
    racy_words: int = 4,
    race_period: int = 6,
    private_ops: int = 16,
) -> Program:
    return _generate(
        num_threads,
        seed,
        scale,
        writers_race=True,
        iterations=iterations,
        racy_words=racy_words,
        race_period=race_period,
        private_ops=private_ops,
    )


@workload("racy-readers")
def racy_readers(
    num_threads: int,
    seed: int,
    scale: float,
    *,
    iterations: int = 200,
    racy_words: int = 4,
    race_period: int = 6,
    private_ops: int = 16,
) -> Program:
    return _generate(
        num_threads,
        seed,
        scale,
        writers_race=False,
        iterations=iterations,
        racy_words=racy_words,
        race_period=race_period,
        private_ops=private_ops,
    )
