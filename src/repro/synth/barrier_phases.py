"""Barrier-phased stencil ("ocean/fft-like").

SPLASH-2's ocean/fft pattern: the grid is partitioned into per-thread
row blocks; each phase a thread reads its own block plus the *boundary
rows* of its neighbours (written by them in the previous phase) and
rewrites its own block.  Producer->consumer sharing is always separated
by a barrier, so there are no conflicts — but unlike the data-parallel
workload the sharing involves *writes*, so MESI-family protocols pay
invalidations/forwards on every boundary row each phase while ARC pays
only self-invalidation refetches.
"""

from __future__ import annotations

from ..trace.program import Program
from .base import scaled, workload
from .patterns import AddressSpace, TraceAssembler, strided_span


@workload("stencil-ocean")
def generate(
    num_threads: int,
    seed: int,
    scale: float,
    *,
    phases: int = 6,
    rows_per_thread: int = 16,
    row_bytes: int = 256,
    gap: int = 1,
) -> Program:
    rows_per_thread = scaled(rows_per_thread, scale, minimum=2)
    space = AddressSpace()
    # Double-buffered grid: even phases read buffer 0 / write buffer 1,
    # odd phases the reverse, so halo reads never race with the
    # neighbour's same-phase writes (the reason real stencils are
    # conflict-free).  Thread blocks are line-aligned because row_bytes
    # is a multiple of the line size.
    block_bytes = rows_per_thread * row_bytes
    grids = [space.alloc(num_threads * block_bytes) for _ in range(2)]

    def block(buf: int, tid: int) -> int:
        return grids[buf] + tid * block_bytes

    traces = []
    for tid in range(num_threads):
        asm = TraceAssembler()
        up = (tid - 1) % num_threads
        down = (tid + 1) % num_threads
        for phase in range(phases):
            src, dst = phase % 2, 1 - phase % 2
            if num_threads > 1:
                # neighbours' boundary rows, written by them last phase
                asm.reads(
                    strided_span(
                        block(src, up) + block_bytes - row_bytes, row_bytes // 8
                    ),
                    gap=gap,
                )
                asm.reads(strided_span(block(src, down), row_bytes // 8), gap=gap)
            asm.reads(strided_span(block(src, tid), block_bytes // 8), gap=gap)
            asm.writes(strided_span(block(dst, tid), block_bytes // 8), gap=gap)
            asm.barrier(0)
        traces.append(asm.build())
    return Program(traces, name="stencil-ocean")
