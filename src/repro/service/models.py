"""Typed request/response models shared by server, workers and client.

Everything that crosses the HTTP boundary is a frozen dataclass with an
explicit ``to_dict``/``from_dict`` pair — the wire format is plain JSON,
validated at the edge so a malformed request dies with a structured
:class:`~repro.common.errors.ServiceError` (HTTP 400) before it can
reach the queue.

Canonicalization matters here: a :class:`JobSpec`'s identity (and hence
its queue dedupe key and its result-cache key) is the SHA-256 of its
*canonical work dict* — the fields that determine the computed artifact,
excluding scheduling knobs (priority, timeout, retries) and
result-neutral execution knobs (engine, sanitize: the differential
suite proves engine choice cannot perturb a byte, and the sanitizer is
stdout-invariant by contract).  Resubmitting the same work therefore
lands on the same job and the same cached result.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from ..common.config import ProtocolKind, SystemConfig
from ..common.errors import ServiceError

#: protocol names a job may request.  ``moesi`` is MESI with the Owned
#: state enabled, ``ceplus`` is accepted as an alias of ``ce+`` (shell
#: quoting makes ``+`` awkward); everything else maps to a
#: :class:`~repro.common.config.ProtocolKind` directly.
PROTOCOL_CHOICES = ("mesi", "moesi", "ce", "ce+", "ceplus", "arc")

#: job kinds the service executes (see :mod:`repro.service.jobs`)
JOB_KINDS = ("analyze", "simulate", "compare")

_ENGINE_CHOICES = (None, "scalar", "batch")


def canonical_json(payload: object) -> str:
    """The one JSON rendering used for hashing and wire payloads."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def normalize_protocol(name: str) -> str:
    """Validate and canonicalize a requested protocol name."""
    text = str(name).strip().lower()
    if text == "ceplus":
        text = "ce+"
    if text not in PROTOCOL_CHOICES:
        raise ServiceError(
            f"unknown protocol {name!r}: expected one of "
            f"{', '.join(PROTOCOL_CHOICES)}"
        )
    return text


def protocol_config(cfg: SystemConfig, name: str) -> SystemConfig:
    """``cfg`` retargeted at the service-level protocol name.

    ``moesi`` is not a :class:`ProtocolKind` of its own — it is MESI
    with ``use_owned_state`` — so the mapping lives here, next to the
    name vocabulary, rather than leaking into every caller.
    """
    if name == "moesi":
        return replace(cfg.with_protocol(ProtocolKind.MESI), use_owned_state=True)
    return replace(cfg.with_protocol(ProtocolKind(name)), use_owned_state=False)


class JobState(str, enum.Enum):
    """Queue state machine: ``PENDING → RUNNING → DONE/FAILED/TIMEOUT``.

    ``RUNNING`` additionally transitions back to ``PENDING`` when its
    lease expires (the claiming worker died or stalled) and attempts
    remain, or to ``TIMEOUT`` when they don't.
    """

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    TIMEOUT = "TIMEOUT"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.TIMEOUT)


@dataclass(frozen=True)
class JobSpec:
    """One unit of analysis work a client can submit.

    Exactly one of ``workload`` (a registered synthetic/captured
    generator name) or ``trace`` (the digest of an uploaded ``.rtb``)
    names the program.  ``protocols`` is the comparison set for
    ``compare`` jobs and must be a single entry for ``simulate``;
    ``analyze`` jobs ignore it (the happens-before analyzer is
    protocol-free).
    """

    kind: str
    workload: str | None = None
    trace: str | None = None
    threads: int = 4
    seed: int = 1
    scale: float = 0.1
    num_cores: int | None = None
    protocols: tuple[str, ...] = ()
    engine: str | None = None
    sanitize: bool = False
    priority: int | None = None
    timeout: float | None = None
    retries: int = 0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {self.kind!r}: expected one of "
                f"{', '.join(JOB_KINDS)}"
            )
        if (self.workload is None) == (self.trace is None):
            raise ServiceError(
                "exactly one of 'workload' (a generator name) or 'trace' "
                "(an uploaded trace digest) must be given"
            )
        if self.workload is not None:
            if self.threads < 1:
                raise ServiceError(f"threads must be >= 1, got {self.threads}")
            if self.scale <= 0:
                raise ServiceError(f"scale must be > 0, got {self.scale}")
        if self.trace is not None and not _is_digest(self.trace):
            raise ServiceError(
                f"trace must be a 64-char hex sha256 digest, got {self.trace!r}"
            )
        object.__setattr__(
            self,
            "protocols",
            tuple(normalize_protocol(p) for p in self.protocols),
        )
        if len(set(self.protocols)) != len(self.protocols):
            raise ServiceError(f"duplicate protocols in {self.protocols}")
        if self.kind == "simulate" and len(self.protocols) != 1:
            raise ServiceError("simulate jobs take exactly one protocol")
        if self.kind == "compare" and not self.protocols:
            # the comparative default: the full matrix the paper studies
            object.__setattr__(
                self, "protocols", ("mesi", "moesi", "ce", "ce+", "arc")
            )
        if self.engine not in _ENGINE_CHOICES:
            raise ServiceError(
                f"unknown engine {self.engine!r}: expected scalar or batch"
            )
        if self.num_cores is not None and self.num_cores < 1:
            raise ServiceError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.timeout is not None and self.timeout <= 0:
            raise ServiceError(f"timeout must be > 0, got {self.timeout}")
        if self.retries < 0:
            raise ServiceError(f"retries must be >= 0, got {self.retries}")
        if self.priority is not None and not 0 <= self.priority <= 9:
            raise ServiceError(
                f"priority must be in [0, 9] (0 = most urgent), "
                f"got {self.priority}"
            )

    # -- identity --------------------------------------------------------

    def work_dict(self) -> dict:
        """The fields that determine the computed artifact.

        Scheduling knobs (priority/timeout/retries) and result-neutral
        execution knobs (engine/sanitize) are deliberately absent — two
        specs differing only there are the *same work* and share one
        queue entry and one cached result.
        """
        return {
            "kind": self.kind,
            "workload": self.workload,
            "trace": self.trace,
            "threads": self.threads if self.workload is not None else None,
            "seed": self.seed if self.workload is not None else None,
            "scale": self.scale if self.workload is not None else None,
            "num_cores": self.num_cores,
            "protocols": list(self.protocols),
        }

    def job_id(self) -> str:
        """Content-addressed job identity (the queue dedupe key)."""
        return hashlib.sha256(
            ("service-job:" + canonical_json(self.work_dict())).encode("utf-8")
        ).hexdigest()

    def cost_estimate(self) -> int:
        """Relative work units, for cheap-jobs-first scheduling.

        A coarse, deterministic proxy for simulated event count: events
        scale with ``threads * scale``; simulation pays it once per
        protocol; the simulation-free analyzer is ~10x cheaper than one
        simulation (PR 2's measured floor).
        """
        weight = self.threads * self.scale if self.workload is not None else 8.0
        if self.kind == "analyze":
            return max(1, int(weight * 10))
        return max(1, int(weight * 100) * max(1, len(self.protocols)))

    def default_priority(self) -> int:
        """Priority when the client didn't pick one (0 urgent .. 9 bulk)."""
        if self.priority is not None:
            return self.priority
        return 3 if self.kind == "analyze" else 5

    # -- wire format -----------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        data["protocols"] = list(self.protocols)
        return data

    @classmethod
    def from_dict(cls, data: object) -> "JobSpec":
        if not isinstance(data, dict):
            raise ServiceError(f"job spec must be a JSON object, got {type(data).__name__}")
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ServiceError(f"unknown job spec field(s): {', '.join(unknown)}")
        kwargs = dict(data)
        if "protocols" in kwargs:
            protocols = kwargs["protocols"]
            if isinstance(protocols, str):
                protocols = [p for p in protocols.split(",") if p]
            if not isinstance(protocols, (list, tuple)):
                raise ServiceError("protocols must be a list of names")
            kwargs["protocols"] = tuple(protocols)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ServiceError(f"bad job spec: {exc}") from None


def _is_digest(text: object) -> bool:
    return (
        isinstance(text, str)
        and len(text) == 64
        and all(c in "0123456789abcdef" for c in text)
    )


@dataclass(frozen=True)
class JobRecord:
    """One job's full queue state, as served by ``GET /api/jobs/<id>``."""

    id: str
    spec: JobSpec
    state: JobState
    priority: int
    cost: int
    attempts: int
    max_attempts: int
    seq: int
    created: float
    updated: float
    owner: str | None = None
    deadline: float | None = None
    result_key: str | None = None
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "state": self.state.value,
            "priority": self.priority,
            "cost": self.cost,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "seq": self.seq,
            "created": self.created,
            "updated": self.updated,
            "owner": self.owner,
            "deadline": self.deadline,
            "result_key": self.result_key,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        return cls(
            id=data["id"],
            spec=JobSpec.from_dict(data["spec"]),
            state=JobState(data["state"]),
            priority=data["priority"],
            cost=data["cost"],
            attempts=data["attempts"],
            max_attempts=data["max_attempts"],
            seq=data["seq"],
            created=data["created"],
            updated=data["updated"],
            owner=data.get("owner"),
            deadline=data.get("deadline"),
            result_key=data.get("result_key"),
            error=data.get("error"),
        )


@dataclass(frozen=True)
class TraceInfo:
    """What the trace store knows about one uploaded ``.rtb``."""

    digest: str
    bytes: int
    events: int
    threads: int
    existed: bool = False

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TraceInfo":
        return cls(**{k: data[k] for k in ("digest", "bytes", "events", "threads")},
                   existed=bool(data.get("existed", False)))


@dataclass
class QueueStats:
    """Aggregate queue counters, as served by ``GET /api/stats``."""

    pending: int = 0
    running: int = 0
    done: int = 0
    failed: int = 0
    timeout: int = 0
    depth: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.depth = self.pending + self.running

    def to_dict(self) -> dict:
        return {
            "pending": self.pending,
            "running": self.running,
            "done": self.done,
            "failed": self.failed,
            "timeout": self.timeout,
            "depth": self.depth,
        }
