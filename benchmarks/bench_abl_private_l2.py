"""Bench: private-L2 ablation under CE.

Expected shape: the L2 filters private misses and, because CE's access
bits demote with the line instead of spilling, reduces metadata spills
— the classic reason CE's ISCA-2010 design keeps bits in both private
levels.
"""


def test_abl_private_l2(run_exp):
    (table,) = run_exp("abl_private_l2")
    rows = table.row_dict("config")
    base = rows["L1 only"]
    with_l2 = rows["L1 + 256KB L2"]
    assert with_l2["private misses"] <= base["private misses"]
    assert with_l2["metadata spills"] <= base["metadata spills"]
    assert base["L2 hit rate"] == 0.0
