"""Guard-instrumented recompilation of the protocol sources.

The verifier needs, for every executed transition, the exact sequence
of source-level branch decisions that produced it.  Rather than build a
second interpreter for the protocol dialect (which would drift from the
real semantics the simulator runs), the protocol modules are re-parsed,
every branch condition — ``if``/``while`` tests, conditional
expressions, comprehension filters — is wrapped in a recording guard
``__pv_guard__(site_id, test)`` that returns its argument unchanged,
and the instrumented ASTs are compiled into a *shadow package* under
``repro._pv``.  The shadow classes therefore execute byte-for-byte the
shipped control flow while emitting a ``(site, outcome)`` trace: the
transition's symbolic guard, resolvable back to file/line/source text
through the :class:`SiteTable`.

Two properties the rest of the package relies on:

* **Exactness** — a guard records the truthiness Python actually used,
  so two transitions with different guard signatures are mutually
  exclusive at their first divergent site (that site evaluated both
  ways under the same earlier decisions), and the extracted relation is
  non-overlapping by construction.
* **Isolation** — shadow modules resolve their relative imports
  through ``sys.modules`` aliases onto the *real* support modules
  (bitops, caches, messages, metadata...), so only the protocol logic
  itself is recompiled.  Mutated variants load under separate roots
  (``repro._pvm_<name>``) and never leak into the real classes.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from types import ModuleType
from typing import Callable

#: protocol modules that are recompiled with guards (order matters:
#: later modules import earlier ones through the shadow package)
PROTOCOL_MODULES = ("base", "mesi", "ce", "ceplus", "arc")

#: support modules aliased onto the real implementations, relative to
#: the ``repro`` package root
_ALIASED = (
    "common",
    "common.bitops",
    "common.errors",
    "common.config",
    "mem",
    "mem.cache",
    "mem.hierarchy",
    "noc",
    "noc.messages",
    "trace",
    "trace.events",
    "protocols.metadata",
    "protocols.aim",
)


@dataclass(frozen=True)
class GuardSite:
    """One instrumented branch condition in a protocol source."""

    site_id: int
    module: str
    qualname: str
    lineno: int
    source: str

    def render(self) -> str:
        return f"{self.module}.py:{self.lineno} [{self.qualname}] {self.source}"


class SiteTable:
    """site_id -> :class:`GuardSite`, shared across one shadow root."""

    def __init__(self) -> None:
        self.sites: list[GuardSite] = []

    def add(self, module: str, qualname: str, lineno: int, source: str) -> int:
        site_id = len(self.sites)
        self.sites.append(GuardSite(site_id, module, qualname, lineno, source))
        return site_id

    def __getitem__(self, site_id: int) -> GuardSite:
        return self.sites[site_id]

    def __len__(self) -> int:
        return len(self.sites)


class GuardRecorder:
    """Collects the guard trace of the step currently executing."""

    __slots__ = ("trace", "enabled")

    def __init__(self) -> None:
        self.trace: list[tuple[int, bool]] = []
        self.enabled = False

    def start(self) -> None:
        self.trace.clear()
        self.enabled = True

    def stop(self) -> tuple[tuple[int, bool], ...]:
        self.enabled = False
        return tuple(self.trace)

    def guard(self, site_id: int, value: object) -> object:
        if self.enabled:
            self.trace.append((site_id, bool(value)))
        return value


class _GuardInstrumenter(ast.NodeTransformer):
    """Wrap every branch condition in ``__pv_guard__(site, test)``."""

    def __init__(self, module: str, table: SiteTable):
        self.module = module
        self.table = table
        self._scope: list[str] = []

    def _wrap(self, test: ast.expr) -> ast.expr:
        qualname = ".".join(self._scope) or "<module>"
        site = self.table.add(
            self.module, qualname, test.lineno, ast.unparse(test)
        )
        return ast.Call(
            func=ast.Name(id="__pv_guard__", ctx=ast.Load()),
            args=[ast.Constant(value=site), test],
            keywords=[],
        )

    def _visit_scope(self, node):
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()
        return node

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope
    visit_ClassDef = _visit_scope

    def visit_If(self, node: ast.If):
        self.generic_visit(node)
        node.test = self._wrap(node.test)
        return node

    def visit_While(self, node: ast.While):
        self.generic_visit(node)
        node.test = self._wrap(node.test)
        return node

    def visit_IfExp(self, node: ast.IfExp):
        self.generic_visit(node)
        node.test = self._wrap(node.test)
        return node

    def visit_comprehension(self, node: ast.comprehension):
        self.generic_visit(node)
        node.ifs = [self._wrap(test) for test in node.ifs]
        return node


@dataclass
class InstrumentedProtocols:
    """One loaded shadow root: classes, sites and the live recorder."""

    root: str
    classes: dict[str, type] = field(default_factory=dict)
    modules: dict[str, ModuleType] = field(default_factory=dict)
    sites: SiteTable = field(default_factory=SiteTable)
    recorder: GuardRecorder = field(default_factory=GuardRecorder)
    mutation: str | None = None

    def line_class(self, name: str) -> type:
        """Payload classes (``MesiLine``/``ArcLine``) from the shadow
        modules, so encoded states use the same definitions the
        instrumented dispatch methods construct."""
        for module in self.modules.values():
            cls = getattr(module, name, None)
            if isinstance(cls, type):
                return cls
        raise KeyError(name)


def _protocols_dir() -> Path:
    from .. import protocols

    return Path(protocols.__file__).resolve().parent


def _alias_module(shadow: str, real: str) -> None:
    module = __import__(real, fromlist=["_"])
    sys.modules[shadow] = module


def _placeholder(name: str) -> ModuleType:
    module = ModuleType(name)
    module.__path__ = []  # type: ignore[attr-defined]
    sys.modules[name] = module
    return module


_CACHE: dict[str, InstrumentedProtocols] = {}


def load_instrumented(
    mutation: str | None = None,
    transform: Callable[[str, ast.Module], ast.Module] | None = None,
) -> InstrumentedProtocols:
    """Compile the protocol sources into a guard-instrumented shadow
    package and return its classes.

    ``mutation`` names a seeded AST mutation from :mod:`.mutations`
    (loaded under its own shadow root so mutants never alias the clean
    classes); ``transform`` is the matching AST rewrite, resolved
    automatically when only the name is given.  Results are cached per
    root — the module objects are immutable once executed.
    """
    if mutation is None:
        root = "repro._pv"
    else:
        root = "repro._pvm_" + mutation.replace("-", "_")
    cached = _CACHE.get(root)
    if cached is not None:
        return cached
    if mutation is not None and transform is None:
        from .mutations import MUTATIONS

        transform = MUTATIONS[mutation].transform

    loaded = InstrumentedProtocols(root=root, mutation=mutation)
    _placeholder(root)
    _placeholder(root + ".protocols")
    for name in _ALIASED:
        _alias_module(f"{root}.{name}", f"repro.{name}")

    src_dir = _protocols_dir()
    guard = loaded.recorder.guard
    for name in PROTOCOL_MODULES:
        source = (src_dir / f"{name}.py").read_text()
        tree = ast.parse(source, filename=f"{name}.py")
        if transform is not None:
            tree = transform(name, tree)
        instrumenter = _GuardInstrumenter(name, loaded.sites)
        tree = ast.fix_missing_locations(instrumenter.visit(tree))
        code = compile(tree, filename=f"<protover:{root}.{name}>", mode="exec")
        module = ModuleType(f"{root}.protocols.{name}")
        module.__package__ = f"{root}.protocols"
        module.__pv_guard__ = guard  # type: ignore[attr-defined]
        sys.modules[module.__name__] = module
        exec(code, module.__dict__)
        loaded.modules[name] = module

    loaded.classes = {
        "mesi": loaded.modules["mesi"].MesiProtocol,
        "moesi": loaded.modules["mesi"].MesiProtocol,
        "ce": loaded.modules["ce"].CeProtocol,
        "ceplus": loaded.modules["ceplus"].CePlusProtocol,
        "ce+": loaded.modules["ceplus"].CePlusProtocol,
        "arc": loaded.modules["arc"].ArcProtocol,
    }
    _CACHE[root] = loaded
    return loaded
