"""Tests for the MOESI variant (Owned state)."""

import pytest

from repro.common.config import ProtocolKind, SystemConfig
from repro.core.api import compare_protocols, run_program
from repro.core.machine import Machine
from repro.protocols.base import E, M, O, S
from repro.protocols.ce import CeProtocol
from repro.protocols.mesi import MesiProtocol
from repro.synth import build_workload

LINE = 0x4000


def make(proto_cls=MesiProtocol, **cfg_kw):
    cfg = SystemConfig(
        num_cores=4,
        protocol="ce" if proto_cls is CeProtocol else "mesi",
        use_owned_state=True,
        **cfg_kw,
    )
    machine = Machine(cfg)
    return machine, proto_cls(machine)


class TestOwnedState:
    def test_read_from_modified_owner_enters_o(self):
        machine, proto = make()
        proto.access(0, LINE, 8, True, 0)      # M at core 0
        proto.access(1, LINE, 8, False, 10)    # read
        assert proto.l1[0].peek(LINE).state == O
        assert proto.l1[1].peek(LINE).state == S
        entry = proto.directory[LINE]
        assert entry.owner == 0
        assert entry.sharer_list() == [1]
        # crucially: no LLC writeback happened — the LLC's copy (from the
        # original miss fill) is still clean; the dirty data lives in O
        bank = machine.home_bank(LINE)
        llc_line = machine.llc_banks[bank].get(LINE, touch=False)
        assert llc_line is not None and not llc_line.dirty

    def test_owner_keeps_supplying_readers(self):
        machine, proto = make()
        proto.access(0, LINE, 8, True, 0)
        proto.access(1, LINE, 8, False, 10)
        forwards = machine.stats.forwards
        proto.access(2, LINE, 8, False, 20)    # second reader
        assert machine.stats.forwards == forwards + 1
        assert proto.l1[0].peek(LINE).state == O
        assert sorted(proto.directory[LINE].sharer_list()) == [1, 2]

    def test_clean_exclusive_downgrades_to_s(self):
        machine, proto = make()
        proto.access(0, LINE, 8, False, 0)     # E (clean)
        proto.access(1, LINE, 8, False, 10)
        assert proto.l1[0].peek(LINE).state == S
        assert proto.directory[LINE].owner == -1

    def test_write_hit_in_o_upgrades_and_invalidates_sharers(self):
        machine, proto = make()
        proto.access(0, LINE, 8, True, 0)
        proto.access(1, LINE, 8, False, 10)
        proto.access(2, LINE, 8, False, 20)
        proto.access(0, LINE, 8, True, 30)     # O -> M
        assert proto.l1[0].peek(LINE).state == M
        assert proto.l1[1].peek(LINE) is None
        assert proto.l1[2].peek(LINE) is None
        entry = proto.directory[LINE]
        assert entry.owner == 0 and entry.sharers == 0

    def test_sharer_upgrade_invalidates_the_owner(self):
        machine, proto = make()
        proto.access(0, LINE, 8, True, 0)
        proto.access(1, LINE, 8, False, 10)    # core0 O, core1 S
        proto.access(1, LINE, 8, True, 20)     # S -> M at core 1
        assert proto.l1[1].peek(LINE).state == M
        assert proto.l1[0].peek(LINE) is None
        assert proto.directory[LINE].owner == 1

    def test_o_eviction_writes_back(self):
        from repro.common.config import CacheConfig

        machine, proto = make(l1=CacheConfig(size=256, assoc=2, line_size=64))
        lines = [0x0, 0x80, 0x100]
        proto.access(0, lines[0], 8, True, 0)
        proto.access(1, lines[0], 8, False, 1)  # core0 -> O
        proto.access(0, lines[1], 8, False, 2)
        proto.access(0, lines[2], 8, False, 3)  # evicts the O line
        assert machine.stats.l1_writebacks == 1
        bank = machine.home_bank(lines[0])
        assert machine.llc_banks[bank].contains(lines[0])
        assert proto.directory[lines[0]].owner == -1

    def test_write_miss_takes_over_from_o_owner(self):
        machine, proto = make()
        proto.access(0, LINE, 8, True, 0)
        proto.access(1, LINE, 8, False, 10)    # core0 O, core1 S
        proto.access(2, LINE, 8, True, 20)     # write miss
        assert proto.l1[2].peek(LINE).state == M
        assert proto.l1[0].peek(LINE) is None
        assert proto.l1[1].peek(LINE) is None
        assert proto.directory[LINE].owner == 2


class TestMoesiTrafficAdvantage:
    def test_fewer_llc_writebacks_on_producer_consumer(self):
        """MOESI's whole point: read-after-write sharing stops paying a
        writeback per downgrade."""
        program = build_workload("stencil-ocean", num_threads=4, seed=1, scale=0.2)
        mesi = run_program(SystemConfig(num_cores=4), program)
        moesi = run_program(
            SystemConfig(num_cores=4, use_owned_state=True), program
        )
        assert moesi.flit_hops < mesi.flit_hops
        assert moesi.stats.accesses == mesi.stats.accesses


class TestMoesiWithCe:
    def test_conflicts_identical_under_moesi(self):
        program = build_workload("racy-writers", num_threads=4, seed=1, scale=0.1)
        base = run_program(SystemConfig(num_cores=4, protocol="ce"), program)
        moesi = run_program(
            SystemConfig(num_cores=4, protocol="ce", use_owned_state=True), program
        )
        assert base.num_conflicts > 0
        assert moesi.num_conflicts > 0
        base_lines = {c.line_addr for c in base.stats.conflicts}
        moesi_lines = {c.line_addr for c in moesi.stats.conflicts}
        assert base_lines == moesi_lines

    def test_o_owner_conflict_checked_on_forward(self):
        machine, proto = make(CeProtocol)
        proto.access(0, LINE, 8, True, 0)      # write bits at core 0
        proto.access(1, LINE, 8, False, 10)    # W-R conflict via fwd; core0 -> O
        assert len(machine.stats.conflicts) == 1
        assert machine.stats.conflicts[0].kind() == "W-R"
        # core 0 still holds the line in O with its bits intact
        assert proto.l1[0].peek(LINE).state == O

    def test_conflict_free_suite_clean_under_moesi(self):
        program = build_workload("false-sharing", num_threads=4, seed=1, scale=0.1)
        comparison = compare_protocols(
            SystemConfig(num_cores=4, use_owned_state=True),
            program,
            protocols=[ProtocolKind.CE, ProtocolKind.CEPLUS],
        )
        for proto, result in comparison.results.items():
            assert result.num_conflicts == 0, proto
