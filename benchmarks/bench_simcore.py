"""Simulation-core engine benchmark: batch vs scalar wall-clock.

The gate workload is ``compute-water`` — dispatch-bound by design (see
its module docstring): after cache warm-up nearly every event is an L1
hit to thread-private or read-only-shared data, so scalar wall-clock is
pure per-event protocol dispatch and the batch engine's bulk
application shows its full advantage.  The batch engine must beat
scalar by at least the floor committed in ``BENCH_simcore.json``
(default 5x); timings only count after the two engines' renderings are
checked byte-identical, so a fast-but-wrong engine can never "pass".

Report-only rows cover the other regime — residue-bound workloads
(migratory sharing, stencil halos) where the adaptive bail-out caps the
downside near 1x (docs/ENGINE.md discusses the trade-off).  They are
recorded in the snapshot but carry no assertion: their ratios hover
around parity and machine noise would make a gate flaky.

Run standalone (``python benchmarks/bench_simcore.py``) to print the
table and refresh ``BENCH_simcore.json``; the pytest entry enforces the
committed floor (CI's bench smoke step).
"""

from __future__ import annotations

import sys
import time

from repro import ProtocolKind, SystemConfig
from repro.core.batch import BatchSimulator
from repro.core.simulator import Simulator
from repro.synth.suite import build_workload
from repro.verify.diffengine import render_result

DEFAULT_FLOOR = 5.0

#: the dispatch-heavy gate point (measured ~10-19x on an idle machine,
#: so a 5x floor leaves headroom for timing noise and slow CI runners)
GATE = ("compute-water", 8, 2.0, ProtocolKind.CEPLUS)

#: residue-bound contrast points, recorded but not gated
REPORT = [
    ("stencil-ocean", 8, 0.5, ProtocolKind.CEPLUS),
    ("migratory-token", 8, 0.25, ProtocolKind.MESI),
]


def _measure(name, threads, scale, kind, repeats=2):
    """Best-of-``repeats`` wall-clock per engine on fresh simulators,
    with the byte-identity check folded in (renderings of the first
    timed run of each engine must match)."""
    program = build_workload(name, num_threads=threads, seed=1, scale=scale)
    cfg = SystemConfig(num_cores=threads).with_protocol(kind)

    def best(make):
        times, texts = [], []
        for _ in range(repeats):
            sim = make()
            start = time.perf_counter()
            result = sim.run()
            times.append(time.perf_counter() - start)
            texts.append(render_result(result))
        return min(times), texts[0]

    scalar_s, scalar_text = best(lambda: Simulator(cfg, program))
    batch_s, batch_text = best(lambda: BatchSimulator(cfg, program))
    assert batch_text == scalar_text, (
        f"{name}/{kind.value}: engines diverged — timing is meaningless"
    )
    return {
        "workload": name,
        "protocol": kind.value,
        "threads": threads,
        "scale": scale,
        "events": program.num_events(),
        "scalar_s": round(scalar_s, 4),
        "batch_s": round(batch_s, 4),
        "speedup": round(scalar_s / batch_s, 2),
    }


def bench_simcore(floor: float) -> dict:
    gate = _measure(*GATE)
    assert gate["speedup"] >= floor, (
        f"batch engine below committed floor on {gate['workload']}: "
        f"{gate['speedup']:.2f}x < {floor:.1f}x "
        f"(scalar {gate['scalar_s']:.2f}s, batch {gate['batch_s']:.2f}s)"
    )
    return {
        "floor": floor,
        "gate": gate,
        "report": [_measure(*point) for point in REPORT],
    }


def test_bench_simcore():
    """Pytest entry (CI bench smoke): the batch engine must clear the
    floor committed in BENCH_simcore.json on the dispatch-heavy gate."""
    from conftest import committed_floor, record_bench

    payload = bench_simcore(committed_floor("simcore", DEFAULT_FLOOR))
    record_bench("simcore", payload)


def main() -> int:
    from conftest import committed_floor, record_bench

    payload = bench_simcore(committed_floor("simcore", DEFAULT_FLOOR))
    rows = [payload["gate"], *payload["report"]]
    for row in rows:
        tag = "GATE" if row is payload["gate"] else "    "
        print(
            f"{tag} {row['workload']:<24} {row['protocol']:<5} "
            f"{row['events']:>8} events  scalar {row['scalar_s']:6.2f}s  "
            f"batch {row['batch_s']:6.2f}s  {row['speedup']:5.2f}x"
        )
    path = record_bench("simcore", payload)
    print(f"floor {payload['floor']:.1f}x — snapshot written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
