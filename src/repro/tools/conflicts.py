"""Conflict reporter: run a workload under a detector and summarize the
region conflict exceptions it raises.

Usage::

    python -m repro.tools.conflicts racy-writers --protocol arc --threads 8
    python -m repro.tools.conflicts racy-readers --protocol ce --verbose
"""

from __future__ import annotations

import argparse
import sys

from ..common.config import SystemConfig
from ..core.api import run_program
from ..verify.summary import kind_mix, summary_table
from .inspect import load_target, parse_params


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.conflicts")
    parser.add_argument("target", help="workload name or .npz trace path")
    parser.add_argument(
        "--protocol", choices=("ce", "ce+", "arc"), default="arc"
    )
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument(
        "--verbose", action="store_true", help="print every conflict record"
    )
    parser.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="workload generator parameter (repeatable)",
    )
    args = parser.parse_args(argv)

    program = load_target(
        args.target, args.threads, args.seed, args.scale,
        **parse_params(args.param),
    )
    cfg = SystemConfig(
        num_cores=max(2, program.num_threads), protocol=args.protocol
    )
    result = run_program(cfg, program)
    conflicts = result.stats.conflicts

    print(
        f"{program.name} under {args.protocol}: {len(conflicts)} region "
        f"conflict exception(s) in {result.cycles:,} cycles"
    )
    if not conflicts:
        return 0
    mix = kind_mix(conflicts)
    print("kind mix: " + ", ".join(f"{k}={n}" for k, n in sorted(mix.items())))
    print()
    print(summary_table(conflicts).render())
    if args.verbose:
        print()
        for record in conflicts:
            print(
                f"  cycle {record.cycle:>10,}: {record.kind()} on "
                f"{record.line_addr:#x} bytes {record.byte_mask:#x} "
                f"core {record.first_core} r{record.first_region} vs "
                f"core {record.second_core} r{record.second_region} "
                f"({record.detected_by})"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
