"""Workload inspector.

Prints a workload's Table II-style characteristics, a region-length
histogram, per-thread summaries, and the sharing profile — handy when
designing new generators or diagnosing why a protocol behaves the way
it does on a workload.

Usage::

    python -m repro.tools.inspect lock-counter --threads 8 --scale 0.5
    python -m repro.tools.inspect path/to/trace.npz
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from ..harness.tables import TextTable
from ..synth.base import generate, registered_workloads
from ..trace.io import load_program
from ..trace.program import Program
from ..trace.regions import region_lengths
from ..trace.validate import validate_program

HIST_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def parse_params(items: list[str] | None) -> dict:
    """Parse repeated ``key=value`` workload parameters (int/float/bool
    coercion, falling back to string)."""
    params: dict = {}
    for item in items or []:
        key, _, raw = item.partition("=")
        if not key or not raw:
            raise SystemExit(f"bad --param {item!r}, expected key=value")
        value: object
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        params[key] = value
    return params


def load_target(
    target: str, num_threads: int, seed: int, scale: float, **params
) -> Program:
    """Load an .npz trace file or build a registered workload by name."""
    path = Path(target)
    if path.suffix == ".npz" and path.exists():
        return load_program(path)
    return generate(
        target, num_threads=num_threads, seed=seed, scale=scale, **params
    )


def characteristics_table(program: Program, line_size: int = 64) -> TextTable:
    stats = program.stats(line_size)
    table = TextTable(f"Workload: {program.name}", ["characteristic", "value"])
    table.add_row("threads", stats.num_threads)
    table.add_row("events", stats.num_events)
    table.add_row("accesses", stats.num_accesses)
    table.add_row("writes", stats.num_writes)
    table.add_row("write fraction", stats.write_fraction)
    table.add_row("sync ops", stats.num_sync_ops)
    table.add_row("regions", stats.num_regions)
    table.add_row("mean region length", stats.mean_region_length)
    table.add_row("distinct lines", stats.num_lines)
    table.add_row("shared lines", stats.shared_lines)
    table.add_row("shared fraction", stats.shared_fraction)
    return table


def region_histogram(program: Program) -> TextTable:
    """Histogram of region lengths (accesses per region) across threads."""
    lengths = np.concatenate(
        [region_lengths(trace) for trace in program.traces]
        or [np.zeros(0, dtype=np.int64)]
    )
    table = TextTable("Region length histogram", ["bucket", "regions", "share"])
    if len(lengths) == 0:
        return table
    previous = 0
    total = len(lengths)
    for bucket in HIST_BUCKETS:
        count = int(np.count_nonzero((lengths >= previous) & (lengths < bucket)))
        if count:
            table.add_row(f"[{previous}, {bucket})", count, count / total)
        previous = bucket
    count = int(np.count_nonzero(lengths >= previous))
    if count:
        table.add_row(f">= {previous}", count, count / total)
    return table


def per_thread_table(program: Program) -> TextTable:
    table = TextTable(
        "Per-thread profile",
        ["thread", "events", "accesses", "writes", "sync ops", "regions"],
    )
    for tid, trace in enumerate(program.traces):
        table.add_row(
            tid,
            len(trace),
            trace.num_accesses(),
            trace.num_writes(),
            trace.num_sync_ops(),
            trace.num_regions(),
        )
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.inspect")
    parser.add_argument(
        "target", nargs="?", help="workload name or .npz trace path"
    )
    parser.add_argument("--list", action="store_true", help="list workloads")
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--line-size", type=int, default=64)
    parser.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="workload generator parameter (repeatable)",
    )
    args = parser.parse_args(argv)

    if args.list or not args.target:
        for name in registered_workloads():
            print(name)
        return 0

    program = load_target(
        args.target, args.threads, args.seed, args.scale,
        **parse_params(args.param),
    )
    validate_program(program, args.line_size)
    for table in (
        characteristics_table(program, args.line_size),
        region_histogram(program),
        per_thread_table(program),
    ):
        print(table.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
