"""Integer interval domain for the static conflict analyzer.

Index expressions in captured workloads are small integer arithmetic
over the thread id, ``scaled(...)`` results, and loop counters.  The
abstract interpreter folds whatever is concrete and falls back to this
closed-interval domain for the rest; :data:`Interval.TOP` (unbounded on
both sides) is the sound "don't know" element.

Everything here is deliberately conservative: any operation that cannot
produce a tight bound returns a wider interval, never a narrower one.
The soundness containment suite (``tests/test_statics_containment.py``)
leans on exactly that direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

_INF = None  # readable alias for an open bound


@dataclass(frozen=True)
class Interval:
    """Closed integer interval ``[lo, hi]``; ``None`` means unbounded."""

    lo: Optional[int]
    hi: Optional[int]

    # -- constructors ------------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        return _TOP

    @staticmethod
    def point(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def from_range(lo: int, hi_exclusive: int) -> "Interval":
        """The interval of ``range(lo, hi_exclusive)`` (empty → point lo)."""
        if hi_exclusive <= lo:
            return Interval(lo, lo)
        return Interval(lo, hi_exclusive - 1)

    # -- predicates --------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.lo is _INF and self.hi is _INF

    @property
    def is_point(self) -> bool:
        return self.lo is not _INF and self.lo == self.hi

    def contains(self, value: int) -> bool:
        if self.lo is not _INF and value < self.lo:
            return False
        if self.hi is not _INF and value > self.hi:
            return False
        return True

    # -- lattice -----------------------------------------------------------

    def hull(self, other: "Interval") -> "Interval":
        lo = _INF if self.lo is _INF or other.lo is _INF else min(self.lo, other.lo)
        hi = _INF if self.hi is _INF or other.hi is _INF else max(self.hi, other.hi)
        return Interval(lo, hi)

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """The overlap, or ``None`` when provably disjoint."""
        lo = self.lo if other.lo is _INF else (
            other.lo if self.lo is _INF else max(self.lo, other.lo)
        )
        hi = self.hi if other.hi is _INF else (
            other.hi if self.hi is _INF else min(self.hi, other.hi)
        )
        if lo is not _INF and hi is not _INF and lo > hi:
            return None
        return Interval(lo, hi)

    def clip(self, lo: int, hi: int) -> "Interval":
        """Clamp into ``[lo, hi]`` (shared-object bounds checking)."""
        new_lo = lo if self.lo is _INF else min(max(self.lo, lo), hi)
        new_hi = hi if self.hi is _INF else max(min(self.hi, hi), lo)
        return Interval(new_lo, new_hi)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        lo = _INF if self.lo is _INF or other.lo is _INF else self.lo + other.lo
        hi = _INF if self.hi is _INF or other.hi is _INF else self.hi + other.hi
        return Interval(lo, hi)

    def __sub__(self, other: "Interval") -> "Interval":
        lo = _INF if self.lo is _INF or other.hi is _INF else self.lo - other.hi
        hi = _INF if self.hi is _INF or other.lo is _INF else self.hi - other.lo
        return Interval(lo, hi)

    def __neg__(self) -> "Interval":
        lo = _INF if self.hi is _INF else -self.hi
        hi = _INF if self.lo is _INF else -self.lo
        return Interval(lo, hi)

    def __mul__(self, other: "Interval") -> "Interval":
        if _INF in (self.lo, self.hi, other.lo, other.hi):
            return _TOP
        products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        return Interval(min(products), max(products))

    def __floordiv__(self, other: "Interval") -> "Interval":
        if _INF in (self.lo, self.hi, other.lo, other.hi):
            return _TOP
        if other.lo <= 0 <= other.hi:
            return _TOP
        quotients = [
            self.lo // other.lo,
            self.lo // other.hi,
            self.hi // other.lo,
            self.hi // other.hi,
        ]
        return Interval(min(quotients), max(quotients))

    def __mod__(self, other: "Interval") -> "Interval":
        if other.is_point and other.lo is not _INF and other.lo > 0:
            m = other.lo
            if (
                self.lo is not _INF
                and self.hi is not _INF
                and self.lo >= 0
                and self.lo // m == self.hi // m
            ):
                return Interval(self.lo % m, self.hi % m)
            return Interval(0, m - 1)
        return _TOP

    # -- comparisons (three-valued: True / False / None=unknown) -----------

    def cmp_lt(self, other: "Interval") -> Optional[bool]:
        if self.hi is not _INF and other.lo is not _INF and self.hi < other.lo:
            return True
        if self.lo is not _INF and other.hi is not _INF and self.lo >= other.hi:
            return False
        return None

    def cmp_eq(self, other: "Interval") -> Optional[bool]:
        if self.is_point and other.is_point:
            return self.lo == other.lo
        if self.intersect(other) is None:
            return False
        return None

    def __repr__(self) -> str:
        if self.is_top:
            return "[-inf, +inf]"
        lo = "-inf" if self.lo is _INF else str(self.lo)
        hi = "+inf" if self.hi is _INF else str(self.hi)
        return f"[{lo}, {hi}]"


_TOP = Interval(_INF, _INF)


def hull_all(intervals: Iterable[Interval]) -> Interval:
    """Convex hull of a non-empty iterable of intervals."""
    result: Optional[Interval] = None
    for iv in intervals:
        result = iv if result is None else result.hull(iv)
    if result is None:
        raise ValueError("hull of empty iterable")
    return result


def affine_render(samples: dict[int, Interval]) -> str:
    """Render per-tid index intervals as a thread-id-affine slice.

    Given the interval observed for each concrete thread id, detect the
    common ``a + b*tid + [0, w]`` form and render it symbolically (the
    shape produced by block partitioning); otherwise fall back to the
    hull.  Rendering only — classification never consumes this.
    """
    tids = sorted(samples)
    if len(tids) >= 2 and all(
        samples[t].lo is not None and samples[t].hi is not None for t in tids
    ):
        t0, t1 = tids[0], tids[1]
        stride = samples[t1].lo - samples[t0].lo  # type: ignore[operator]
        width = samples[t0].hi - samples[t0].lo  # type: ignore[operator]
        affine = all(
            samples[t].lo == samples[t0].lo + stride * (t - t0)
            and samples[t].hi - samples[t].lo == width  # type: ignore[operator]
            for t in tids
        )
        if affine and stride != 0:
            base = samples[t0].lo - stride * t0  # type: ignore[operator]
            origin = f"{stride}*tid" if stride != 1 else "tid"
            if base:
                origin = f"{origin}{base:+d}"
            if width:
                return f"{origin} .. +{width}"
            return origin
    merged = hull_all(samples.values())
    return repr(merged)
