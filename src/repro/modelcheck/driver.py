"""Replay driver: runs one interleaving of a workload on a real protocol.

The driver owns everything one exploration step needs — a fresh
:class:`~repro.core.machine.Machine`, the protocol under test, a
:class:`~repro.verify.recorder.ScheduleRecorder` and a ghost memory —
and executes ``(core, event)`` steps exactly the way the simulator
would: the access is recorded *before* the protocol sees it, boundaries
record region end/start around ``region_boundary``.

Two deliberate differences from the simulator:

* **Cycles are the global step index** (times a stride).  Every path to
  the same per-core position vector executes the same number of steps,
  protocol latencies never feed back into timing, and the recorded
  intervals are exact — so the oracle comparison needs no photo-finish
  margin.
* **States are reproduced by replay, not by cloning.**  Protocol
  instances hold ``on_evict`` closures over themselves, which deep copy
  cannot split; replaying a step prefix from scratch is cheap at model
  checking scale and trivially correct.

The ghost memory gives MESI-family runs a data-value check: a global
version per line is bumped by every write, and the version each cached
copy *would* hold is tracked from fills and writes.  Under eager
invalidation every cached copy must always be current.  ARC legally
holds stale copies mid-region, so its value semantics are checked
structurally (self-invalidation/self-downgrade invariants) plus the
oracle equivalence, not through the ghost.
"""

from __future__ import annotations

from ..common.bitops import byte_mask
from ..common.config import AimConfig, CacheConfig, ProtocolKind, SystemConfig
from ..core.machine import Machine
from ..protocols import make_protocol
from ..trace.events import READ, WRITE
from ..verify.recorder import ScheduleRecorder
from .workload import ACCESS_SIZE, MCEvent

#: cycles between scripted steps (room for distinct start/end stamps)
CYCLE_STRIDE = 64

#: CLI/driver protocol keys -> (ProtocolKind, AIM override).  ``aim`` is
#: CE+ with a deliberately tiny AIM so the bounded workloads overflow it
#: and exercise the eviction/writeback path; ``ceplus`` accepts both the
#: CLI-friendly spelling and the config's ``ce+``.
PROTOCOL_KEYS: dict[str, tuple[ProtocolKind, AimConfig | None]] = {
    "mesi": (ProtocolKind.MESI, None),
    "ce": (ProtocolKind.CE, None),
    "ceplus": (ProtocolKind.CEPLUS, None),
    "ce+": (ProtocolKind.CEPLUS, None),
    "arc": (ProtocolKind.ARC, None),
    "aim": (
        ProtocolKind.CEPLUS,
        AimConfig(size=64, assoc=2, entry_bytes=32, latency=3),
    ),
}


def modelcheck_config(protocol: str, cores: int) -> SystemConfig:
    """A deliberately tiny machine: 2-line L1s so a third line forces
    evictions (CE spills, AIM pressure), an 8-line LLC, and the smallest
    power-of-two core count that fits the active cores."""
    kind, aim = PROTOCOL_KEYS[protocol][0], PROTOCOL_KEYS[protocol][1]
    num_cores = 2 if cores <= 2 else 4
    kwargs = dict(
        num_cores=num_cores,
        protocol=kind,
        l1=CacheConfig(size=128, assoc=2, line_size=64, hit_latency=1),
        llc_bank=CacheConfig(size=512, assoc=8, line_size=64, hit_latency=10),
        use_owned_state=(kind is ProtocolKind.MESI),
    )
    if aim is not None:
        kwargs["aim"] = aim
    return SystemConfig(**kwargs)


class Run:
    """One in-flight interleaving: protocol + recorder + ghost memory."""

    __slots__ = (
        "cfg",
        "cores",
        "machine",
        "protocol",
        "recorder",
        "amap",
        "steps_done",
        "ghost",
        "shadow",
        "track_values",
        "last_step",
        "boundaries",
    )

    def __init__(self, cfg: SystemConfig, cores: int, mutate=None):
        self.cfg = cfg
        self.cores = cores
        self.machine = Machine(cfg)
        self.protocol = make_protocol(self.machine)
        self.protocol.active_cores = cores
        if mutate is not None:
            mutate(self.protocol)
        self.recorder = ScheduleRecorder()
        self.amap = self.machine.amap
        self.steps_done = 0
        # ghost memory: line -> committed version; shadow: per core, the
        # version its cached copy holds (MESI family only)
        self.ghost: dict[int, int] = {}
        self.shadow: list[dict[int, int]] = [dict() for _ in range(cores)]
        self.track_values = cfg.protocol is not ProtocolKind.ARC
        self.last_step: tuple[int, MCEvent] | None = None
        # independently counted boundaries per core (region-index check)
        self.boundaries = [0] * cores

    # -- stepping -----------------------------------------------------------

    def addr_of(self, event: MCEvent) -> int:
        return event.slot * self.cfg.line_size + event.offset

    def step(self, core: int, event: MCEvent) -> None:
        """Execute one scripted event on ``core`` (mirrors the simulator)."""
        self.steps_done += 1
        cycle = self.steps_done * CYCLE_STRIDE
        protocol = self.protocol
        if event.kind in (READ, WRITE):
            is_write = event.kind == WRITE
            addr = self.addr_of(event)
            line = self.amap.line(addr)
            cached_before = self._cached(core, line)
            self.recorder.record_access(
                core,
                cycle,
                protocol.region[core],
                line,
                byte_mask(self.amap.offset(addr), ACCESS_SIZE, self.cfg.line_size),
                is_write,
            )
            protocol.access(core, addr, ACCESS_SIZE, is_write, cycle)
            if self.track_values:
                self._update_ghost(core, line, is_write, cached_before)
        else:
            old_region = protocol.region[core]
            self.recorder.record_region_end(core, old_region, cycle)
            protocol.region_boundary(core, cycle, event.kind)
            self.recorder.record_region_start(
                core, protocol.region[core], cycle
            )
            self.boundaries[core] += 1
        self.last_step = (core, event)

    def finalize(self) -> None:
        """Drain the run (ARC flushes outstanding deltas here)."""
        self.protocol.finalize((self.steps_done + 1) * CYCLE_STRIDE)

    # -- ghost memory -------------------------------------------------------

    def _cached(self, core: int, line: int) -> bool:
        return self.protocol.l1[core].peek(line) is not None

    def _update_ghost(
        self, core: int, line: int, is_write: bool, cached_before: bool
    ) -> None:
        ghost = self.ghost
        if not cached_before:
            # A MESI-family fill always delivers current data: a dirty
            # owner forwards it, otherwise the LLC/DRAM copy is current.
            self.shadow[core][line] = ghost.get(line, 0)
        if is_write:
            ghost[line] = ghost.get(line, 0) + 1
            self.shadow[core][line] = ghost[line]
        # Copies that left any L1 (eviction, invalidation, recall) no
        # longer hold a value; drop their shadow entries.
        for c in range(self.cores):
            stale = [
                ln for ln in self.shadow[c] if self.protocol.l1[c].peek(ln) is None
            ]
            for ln in stale:
                del self.shadow[c][ln]


class Driver:
    """Factory for fresh :class:`Run` instances of one configuration."""

    __slots__ = ("protocol_key", "cores", "addrs", "cfg", "mutate")

    def __init__(self, protocol: str, cores: int, addrs: int, mutate=None):
        if protocol not in PROTOCOL_KEYS:
            raise ValueError(
                f"unknown protocol {protocol!r}; expected one of "
                f"{sorted(PROTOCOL_KEYS)}"
            )
        if not 2 <= cores <= 3:
            raise ValueError("model checking supports 2 or 3 cores")
        if not 2 <= addrs <= 3:
            raise ValueError("model checking supports 2 or 3 address slots")
        self.protocol_key = protocol
        self.cores = cores
        self.addrs = addrs
        self.cfg = modelcheck_config(protocol, cores)
        self.mutate = mutate

    def new_run(self) -> Run:
        return Run(self.cfg, self.cores, mutate=self.mutate)

    def replay(self, steps) -> Run:
        """Fresh run with ``steps`` (a sequence of (core, event)) applied."""
        run = self.new_run()
        for core, event in steps:
            run.step(core, event)
        return run
