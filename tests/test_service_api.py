"""End-to-end HTTP tests of the conflict-analysis service.

One real :class:`~repro.service.server.ConflictService` with an
in-process worker pool, bound to an ephemeral port; one real
:class:`~repro.service.client.ServiceClient` over actual sockets.
The heart of the suite is the equivalence test: a job's result fetched
over HTTP is byte-for-byte identical to executing the same spec
directly through :func:`~repro.service.jobs.execute_job` — the
contract that makes the service a *front door* rather than a fork of
the execution path.
"""

from __future__ import annotations

import threading

import pytest

from repro.service import ConflictService, JobSpec, JobState, make_server
from repro.service.client import ServiceClient, ServiceHTTPError
from repro.service.jobs import execute_job, render_payload
from repro.synth import generate
from repro.trace.io import save_program

WORKLOAD = "lock-counter"


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    svc = ConflictService(
        tmp_path_factory.mktemp("svc"), workers=2, lease_seconds=15.0
    )
    httpd = make_server(svc, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    svc.start()
    yield svc, httpd.server_address[1]
    httpd.shutdown()
    httpd.server_close()
    svc.stop()


@pytest.fixture(scope="module")
def client(service):
    _, port = service
    return ServiceClient(f"http://127.0.0.1:{port}", timeout=60.0)


@pytest.fixture(scope="module")
def sample_rtb(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "sample.rtb"
    save_program(generate(WORKLOAD, num_threads=2, seed=11, scale=0.05), path)
    return path


class TestDiscovery:
    def test_health(self, client):
        data = client.health()
        assert data["ok"] is True
        assert data["version"]

    def test_workloads_lists_the_registry(self, client):
        assert WORKLOAD in client.workloads()

    def test_protocols(self, client):
        assert set(client.protocols()) >= {"mesi", "moesi", "ce", "ce+", "arc"}

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceHTTPError) as err:
            client._request("GET", "/api/nope")
        assert err.value.status == 404


class TestTraces:
    def test_upload_then_info(self, client, sample_rtb):
        info = client.upload_trace(sample_rtb)
        assert not info.existed
        assert info.threads == 2 and info.events > 0
        again = client.trace_info(info.digest)
        assert again.digest == info.digest

    def test_reupload_dedupes(self, client, sample_rtb):
        assert client.upload_trace(sample_rtb).existed

    def test_damaged_upload_is_rejected_and_not_stored(self, client, service):
        svc, _ = service
        before = set(svc.store.digests())
        with pytest.raises(ServiceHTTPError) as err:
            client._request(
                "POST", "/api/traces", body=b"not an rtb at all",
                headers={"Content-Length": "17"},
            )
        assert err.value.status == 400
        assert set(svc.store.digests()) == before
        # and no .tmp- residue was left behind either
        assert not list(svc.store.root.rglob(".tmp-*"))

    def test_unknown_trace_info_is_404(self, client):
        with pytest.raises(ServiceHTTPError) as err:
            client.trace_info("0" * 64)
        assert err.value.status == 404


class TestJobs:
    def test_compare_result_is_byte_identical_to_direct_run(self, client):
        spec = JobSpec(
            kind="compare", workload=WORKLOAD, threads=2, scale=0.05,
            protocols=("mesi", "ce"),
        )
        remote = client.run(spec, timeout=300.0)
        local = render_payload(execute_job(spec)).encode("utf-8")
        assert remote == local

    def test_trace_job_matches_direct_run(self, client, service, sample_rtb):
        svc, _ = service
        digest = client.upload_trace(sample_rtb).digest
        spec = JobSpec(kind="analyze", trace=digest)
        remote = client.run(spec, timeout=300.0)
        local = render_payload(
            execute_job(spec, store=svc.store)
        ).encode("utf-8")
        assert remote == local

    def test_resubmission_dedupes_onto_the_done_job(self, client):
        spec = JobSpec(kind="analyze", workload=WORKLOAD, threads=2, scale=0.05)
        record, deduped = client.submit(spec)
        assert not deduped
        final = client.wait(record.id, timeout=300.0)
        assert final.state is JobState.DONE
        again, deduped = client.submit(spec)
        assert deduped
        assert again.id == record.id and again.state is JobState.DONE
        # same canonical bytes served straight from the journaled result
        assert client.result_bytes(again.id) == client.result_bytes(record.id)

    def test_long_poll_returns_terminal_state(self, client):
        spec = JobSpec(
            kind="simulate", workload=WORKLOAD, threads=2, scale=0.05,
            protocols=("mesi",), seed=3,
        )
        record, _ = client.submit(spec)
        final = client.job(record.id, wait=120.0)
        assert final.state.terminal

    def test_result_before_done_is_409(self, tmp_path):
        # a front door with no workers: nothing can finish the job
        svc = ConflictService(tmp_path / "frontdoor", workers=0)
        httpd = make_server(svc, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            own = ServiceClient(f"http://127.0.0.1:{httpd.server_address[1]}")
            record, _ = own.submit(
                JobSpec(kind="analyze", workload=WORKLOAD, seed=991)
            )
            with pytest.raises(ServiceHTTPError) as err:
                own.result_bytes(record.id)
            assert err.value.status == 409
            assert "PENDING" in str(err.value)
        finally:
            httpd.shutdown()
            httpd.server_close()
            svc.stop()

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceHTTPError) as err:
            client.job("d" * 64)
        assert err.value.status == 404

    def test_malformed_spec_is_400(self, client):
        with pytest.raises(ServiceHTTPError) as err:
            client._post_json("/api/jobs", {"kind": "nonsense"})
        assert err.value.status == 400
        assert "unknown job kind" in str(err.value)

    def test_unknown_spec_field_is_400(self, client):
        with pytest.raises(ServiceHTTPError) as err:
            client._post_json(
                "/api/jobs",
                {"kind": "analyze", "workload": WORKLOAD, "frobnicate": 1},
            )
        assert err.value.status == 400

    def test_unknown_workload_fails_the_job_not_the_submit(self, client):
        spec = JobSpec(kind="analyze", workload="no-such-workload")
        record, _ = client.submit(spec)
        final = client.wait(record.id, timeout=60.0)
        assert final.state is JobState.FAILED
        assert "unknown workload" in final.error

    def test_list_jobs_filters_by_state(self, client):
        done = client.list_jobs(state="DONE")
        assert done and all(r.state is JobState.DONE for r in done)

    def test_stats_counts_add_up(self, client):
        stats = client.stats()
        queue = stats["queue"]
        assert queue["depth"] == queue["pending"] + queue["running"]
        assert stats["workers"] == 2
        assert stats["cache"]["stores"] >= 1


class TestConcurrentClients:
    def test_many_short_lived_clients_converge(self, client, service):
        svc, port = service
        errors: list[BaseException] = []
        ids: list[str] = []
        lock = threading.Lock()

        def one_client(index: int) -> None:
            try:
                own = ServiceClient(f"http://127.0.0.1:{port}", timeout=60.0)
                spec = JobSpec(
                    kind="analyze", workload=WORKLOAD, threads=2,
                    scale=0.05, seed=100 + index % 3,
                )
                record, _ = own.submit(spec)
                final = own.wait(record.id, timeout=300.0)
                assert final.state is JobState.DONE
                payload = own.result(record.id)
                assert payload["job"]["seed"] == 100 + index % 3
                with lock:
                    ids.append(record.id)
            except BaseException as exc:  # noqa: B902 - collected for assert
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=one_client, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300.0)
        assert not errors, errors
        # 8 clients, 3 distinct specs: dedupe collapses onto 3 jobs
        assert len(set(ids)) == 3
