"""Tests for the experiment harness: registry, tables, and per-experiment
structural checks at the quick preset."""

import pytest

from repro.harness import REGISTRY, Settings, TextTable, run_experiment
from repro.harness.experiments import Experiment

QUICK = Settings.quick()

EXPECTED_IDS = {
    "table1_system_config",
    "table2_workloads",
    "table_storage",
    "fig_perf_16",
    "fig_perf_scaling",
    "fig_energy",
    "fig_onchip_traffic",
    "fig_traffic_breakdown",
    "fig_offchip_traffic",
    "fig_aim_sensitivity",
    "fig_region_length",
    "table3_conflicts",
    "fig_network_saturation",
    "abl_arc_lazy_clear",
    "abl_arc_write_through",
    "abl_moesi",
    "abl_private_l2",
    "abl_sparse_directory",
    "abl_aim_writeback",
    "captured_workloads",
}


class TestTextTable:
    def test_add_and_column(self):
        table = TextTable("t", ["a", "b"])
        table.add_row("x", 1)
        table.add_row("y", 2)
        assert table.column("b") == [1, 2]

    def test_row_dict(self):
        table = TextTable("t", ["name", "v"])
        table.add_row("x", 1.5)
        assert table.row_dict("name")["x"]["v"] == 1.5

    def test_wrong_arity_rejected(self):
        table = TextTable("t", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_render_contains_everything(self):
        table = TextTable("My Title", ["name", "value"])
        table.add_row("row1", 12345)
        text = table.render()
        assert "My Title" in text
        assert "row1" in text
        assert "12,345" in text

    def test_render_empty_table(self):
        assert "empty" in TextTable("empty", ["a", "b"]).render()


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(REGISTRY) == EXPECTED_IDS

    def test_entries_are_described(self):
        for exp in REGISTRY.values():
            assert isinstance(exp, Experiment)
            assert exp.paper_artifact
            assert exp.description

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("nope", QUICK)


class TestSettings:
    def test_presets(self):
        assert Settings.bench().scale < Settings.full().scale
        assert Settings.quick().num_threads <= Settings.bench().num_threads

    def test_config_core_count(self):
        assert Settings.quick().config().num_cores == Settings.quick().num_threads
        assert Settings.quick().config(8).num_cores == 8


@pytest.fixture(scope="module")
def quick_results():
    """Run the cheap experiments once at the quick preset."""
    return {
        exp_id: run_experiment(exp_id, QUICK)
        for exp_id in (
            "table1_system_config",
            "table2_workloads",
            "table3_conflicts",
            "fig_aim_sensitivity",
            "abl_arc_lazy_clear",
            "abl_arc_write_through",
            "abl_aim_writeback",
        )
    }


class TestExperimentOutputs:
    def test_table1_lists_components(self, quick_results):
        (table,) = quick_results["table1_system_config"]
        components = table.column("component")
        assert "Cores" in components
        assert "Main memory" in components

    def test_table2_covers_all_workloads(self, quick_results):
        (table,) = quick_results["table2_workloads"]
        assert len(table.rows) == 10  # 8 suite + 2 racy
        assert all(acc > 0 for acc in table.column("accesses"))

    def test_table3_mesi_zero_detectors_positive(self, quick_results):
        (table,) = quick_results["table3_conflicts"]
        rows = table.rows
        for row in rows:
            workload, proto, conflicts = row[0], row[1], row[2]
            if proto == "mesi":
                assert conflicts == 0, workload
            else:
                assert conflicts > 0, (workload, proto)

    def test_aim_sensitivity_monotone_metadata(self, quick_results):
        (table,) = quick_results["fig_aim_sensitivity"]
        meta = table.column("offchip metadata bytes")
        # CE (first row) moves at least as much metadata off-chip as any
        # CE+ configuration, and bigger AIMs never move more than smaller.
        assert meta[0] == max(meta)
        assert all(a >= b for a, b in zip(meta[1:], meta[2:]))

    def test_lazy_clear_sends_no_messages(self, quick_results):
        (table,) = quick_results["abl_arc_lazy_clear"]
        for row in table.rows:
            variant, clear_msgs = row[1], row[4]
            if variant == "lazy":
                assert clear_msgs == 0
            else:
                assert clear_msgs > 0

    def test_arc_write_through_has_stores_only_when_enabled(self, quick_results):
        (table,) = quick_results["abl_arc_write_through"]
        for row in table.rows:
            policy, wt_stores = row[1], row[4]
            if policy == "write-back":
                assert wt_stores == 0
            else:
                assert wt_stores > 0

    def test_aim_writeback_never_more_offchip_than_writethrough(self, quick_results):
        (table,) = quick_results["abl_aim_writeback"]
        by_policy = table.row_dict("policy")
        assert (
            by_policy["write-back"]["offchip metadata bytes"]
            <= by_policy["write-through"]["offchip metadata bytes"]
        )


class TestMainFigures:
    """The heavyweight figures, still at the quick preset."""

    def test_fig_perf_structure(self):
        (table,) = run_experiment("fig_perf_16", QUICK)
        assert table.rows[-1][0] == "geomean"
        for col in ("ce", "ce+", "arc"):
            assert all(v > 0 for v in table.column(col))

    def test_fig_traffic_structure(self):
        (table,) = run_experiment("fig_onchip_traffic", QUICK)
        assert len(table.rows) == 9  # 8 workloads + geomean

    def test_fig_traffic_breakdown_structure(self):
        (table,) = run_experiment("fig_traffic_breakdown", QUICK)
        assert table.column("protocol") == ["mesi", "ce", "ce+", "arc"]
        rows = table.row_dict("protocol")
        assert rows["arc"]["inv"] == 0.0
        assert rows["mesi"]["meta"] == 0.0

    def test_fig_energy_structure(self):
        totals, breakdown = run_experiment("fig_energy", QUICK)
        assert totals.rows[-1][0] == "geomean"
        assert breakdown.column("protocol") == ["mesi", "ce", "ce+", "arc"]
        # component shares of MESI sum to ~its total (1.0)
        mesi = breakdown.row_dict("protocol")["mesi"]
        parts = sum(
            mesi[c] for c in ("l1", "l2", "llc", "aim", "metadata", "dram", "noc", "static")
        )
        assert parts == pytest.approx(mesi["total"], rel=0.05)

    def test_region_length_sweep_rows(self):
        (table,) = run_experiment("fig_region_length", QUICK)
        phases = table.column("phases")
        assert phases == [1, 2, 4, 8, 16]
        lengths = table.column("mean region len")
        assert lengths == sorted(lengths, reverse=True)

    def test_scaling_rows(self):
        (table,) = run_experiment("fig_perf_scaling", QUICK)
        assert table.column("cores") == list(QUICK.core_counts)

    def test_saturation_reports_all_protocols(self):
        (table,) = run_experiment("fig_network_saturation", QUICK)
        assert table.column("protocol") == ["mesi", "ce", "ce+", "arc"]


class TestStorageTable:
    def test_storage_overhead_ordering(self):
        (table,) = run_experiment("table_storage", QUICK)
        rows = table.row_dict("system")
        assert rows["MESI"]["per-core total"] == 0
        assert rows["CE"]["per-core total"] > 0
        assert rows["CE+"]["per-core total"] > rows["CE"]["per-core total"]
        assert rows["ARC"]["L1 access bits"] > rows["CE"]["L1 access bits"]
        for name in ("MESI", "CE", "CE+", "ARC"):
            assert rows[name]["chip total"] == pytest.approx(
                rows[name]["per-core total"] * QUICK.num_threads
            )
