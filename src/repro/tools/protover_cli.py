"""``repro-protover`` — the symbolic protocol verifier CLI.

Runs the full verification stack over the protocol sources:

1. the inductive sweep per protocol (vocabulary × alphabet, nine
   invariants re-proved on every post-state, detection bounds,
   completeness / non-overlap / determinism of the extracted guarded
   relation);
2. the refinement theorems (CE+ ⊑ CE ⊑ MESI) on unmutated sources;
3. dynamic cross-validation: each finding is concretized into a
   replayable modelcheck trace or classified as abstraction
   imprecision — a witness whose replay does *not* reproduce its
   defect is **unsoundness** and dominates the exit code.

Exit codes follow ``repro-staticlint``: 0 = clean, 3 = findings at or
above ``--fail-on`` (or docs drift under ``--check-docs``),
4 = the verifier contradicted itself (unsound concretization).

Examples::

    repro-protover                      # full sweep, all five protocols
    repro-protover ce ceplus --format json
    repro-protover --mutate blind-detection   # seeded-defect drill
    repro-protover --write-docs         # regenerate docs/PROTOCOLS.md
    repro-protover --check-docs         # CI drift gate
"""

from __future__ import annotations

import argparse
import json
import sys

from ..common.durable import atomic_replace_text
from ..protover.concretize import CONCRETIZABLE, cross_validate
from ..protover.extract import load_instrumented
from ..protover.induct import SweepResult, verify_protocol
from ..protover.mutations import MUTATIONS
from ..protover.refine import check_refinements
from ..protover.space import PROTOVER_KEYS, REPLAY_KEYS
from ..protover.tables import docs_current, docs_path, render_tables, splice

EXIT_FAIL = 3
EXIT_UNSOUND = 4

#: finding kinds, in the order text reports list them
KINDS = (
    "exception", "invariant", "detection-completeness",
    "detection-soundness", "overlap", "nondeterminism", "refinement",
)


def _render_guard(finding, loaded, limit: int = 4) -> list[str]:
    lines = []
    decisions = list(finding.guard)
    shown = decisions if len(decisions) <= limit else decisions[-limit:]
    if len(decisions) > limit:
        lines.append(f"      guard: ... {len(decisions) - limit} earlier "
                     "decision(s)")
    for site_id, outcome in shown:
        site = loaded.sites[site_id]
        lines.append(f"      guard: {site.render()} -> {outcome}")
    return lines


def _render_text(results, refinements, loaded, out) -> None:
    for result in results:
        status = "clean" if result.clean else (
            ", ".join(f"{kind}:{count}"
                      for kind, count in sorted(result.finding_counts.items()))
        )
        mutation = f" [mutant {result.mutation}]" if result.mutation else ""
        print(
            f"{result.protocol}{mutation}: {result.states} states, "
            f"{result.steps} transitions, {result.sites} guard sites, "
            f"{result.elapsed:.2f}s — {status}",
            file=out,
        )
        for finding in result.findings:
            invariant = f" [{finding.invariant}]" if finding.invariant else ""
            print(
                f"  {finding.kind}{invariant}: {finding.state_label} "
                f"-- {finding.event_label}",
                file=out,
            )
            print(f"      {finding.message}", file=out)
            for line in _render_guard(finding, loaded):
                print(line, file=out)
            if finding.concrete is not None:
                print(f"      concretization: {finding.concrete}", file=out)
            if finding.trace:
                for line in finding.trace.splitlines():
                    print(f"        {line}", file=out)
    for finding in refinements:
        print(
            f"  refinement: {finding.protocol} | {finding.state_label} "
            f"-- {finding.event_label}",
            file=out,
        )
        print(f"      {finding.message}", file=out)


def _as_json(results: list[SweepResult], refinements) -> dict:
    return {
        "protocols": [
            {
                "protocol": result.protocol,
                "mutation": result.mutation,
                "states": result.states,
                "transitions": result.steps,
                "guard_sites": result.sites,
                "elapsed_s": round(result.elapsed, 3),
                "finding_counts": result.finding_counts,
                "findings": [f.to_dict() for f in result.findings],
            }
            for result in results
        ],
        "refinements": [f.to_dict() for f in refinements],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-protover",
        description="symbolic protocol verifier: extract guarded "
                    "transition tables and prove the coherence "
                    "invariants inductively",
    )
    parser.add_argument(
        "protocols", nargs="*",
        help=f"protocol keys to verify (default: all of "
             f"{' '.join(PROTOVER_KEYS)})",
    )
    parser.add_argument(
        "--mutate", metavar="NAME", default=None,
        help="verify with a seeded source mutation applied "
             "(see --list-mutations)",
    )
    parser.add_argument(
        "--list-mutations", action="store_true",
        help="list the seeded mutation drills and exit",
    )
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument(
        "--fail-on", choices=("any",) + KINDS + ("never",), default="any",
        help="which finding kinds set exit code 3 (default: any)",
    )
    parser.add_argument(
        "--no-refine", action="store_true",
        help="skip the CE+<=CE<=MESI refinement theorems",
    )
    parser.add_argument(
        "--no-concretize", action="store_true",
        help="skip dynamic cross-validation of findings",
    )
    parser.add_argument(
        "--write-docs", action="store_true",
        help="regenerate the transition tables in docs/PROTOCOLS.md",
    )
    parser.add_argument(
        "--check-docs", action="store_true",
        help="fail (exit 3) if docs/PROTOCOLS.md is stale",
    )
    args = parser.parse_args(argv)
    out = sys.stdout

    if args.list_mutations:
        for name, mutation in MUTATIONS.items():
            print(f"{name}: {mutation.summary} "
                  f"(protocol {mutation.protocol})", file=out)
        return 0

    if args.mutate is not None and args.mutate not in MUTATIONS:
        parser.error(
            f"unknown mutation {args.mutate!r}; one of "
            f"{', '.join(MUTATIONS)}"
        )
    keys = args.protocols or (
        [MUTATIONS[args.mutate].protocol] if args.mutate
        else list(PROTOVER_KEYS)
    )
    for key in keys:
        if key not in PROTOVER_KEYS and key != "ce+":
            parser.error(f"unknown protocol {key!r}; one of "
                         f"{', '.join(PROTOVER_KEYS)}")

    loaded = load_instrumented(args.mutate)
    results = [
        verify_protocol(key, mutation=args.mutate, loaded=loaded)
        for key in keys
    ]

    refinements = []
    if not args.no_refine and args.mutate is None:
        refinements = check_refinements(loaded)

    unsound = False
    if not args.no_concretize:
        for result in results:
            concretized: set[str] = set()
            for finding in result.findings:
                if finding.kind not in CONCRETIZABLE:
                    continue
                witness_class = (finding.kind, finding.invariant)
                if witness_class in concretized:
                    continue
                concretized.add(witness_class)
                status = cross_validate(
                    finding, args.mutate, REPLAY_KEYS[result.protocol]
                )
                unsound = unsound or status == "unsound"

    docs_stale = False
    if args.write_docs or args.check_docs:
        if args.mutate is not None:
            parser.error("--write-docs/--check-docs need unmutated tables")
        generated = render_tables(
            [r for r in results if r.protocol in PROTOVER_KEYS]
        )
        path = docs_path()
        document = path.read_text() if path.exists() else ""
        if args.check_docs:
            docs_stale = not docs_current(document, generated)
            if docs_stale:
                print(
                    f"{path} is stale — run repro-protover --write-docs",
                    file=out,
                )
        if args.write_docs:
            atomic_replace_text(path, splice(document, generated),
                                site="protover-docs")
            print(f"wrote {path}", file=out)

    if args.format == "json":
        payload = _as_json(results, refinements)
        payload["docs_stale"] = docs_stale
        payload["unsound"] = unsound
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        _render_text(results, refinements, loaded, out)

    if unsound:
        return EXIT_UNSOUND
    if args.fail_on == "never":
        return EXIT_FAIL if docs_stale else 0
    failing = [
        kind
        for result in results
        for kind in result.finding_counts
        if args.fail_on in ("any", kind)
    ]
    if refinements and args.fail_on in ("any", "refinement"):
        failing.append("refinement")
    return EXIT_FAIL if (failing or docs_stale) else 0


if __name__ == "__main__":
    sys.exit(main())
