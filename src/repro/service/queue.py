"""SQLite-backed persistent priority job queue with lease-based claims.

The queue is the service's one source of truth about work: every state
transition is a single SQLite transaction (WAL mode, ``synchronous``
matched to the global fsync policy), so ``kill -9`` at any instant —
including at the seeded ``queue:*`` kill points the chaos harness fires
— leaves the previous committed state or the new one, never a torn row,
and never loses or duplicates a job.

State machine::

    PENDING --claim--> RUNNING --complete--> DONE
       ^                  |   \\--fail(terminal)--> FAILED
       |                  |
       +--lease expired---+--attempts exhausted--> TIMEOUT
            (requeue)

Claims are *leases*: a worker owns a job only until ``deadline``, and
must :meth:`~JobQueue.heartbeat` to keep it.  A worker that dies simply
stops heartbeating; :meth:`~JobQueue.expire_leases` (run by every claim
and by ``repro-fsck``) re-queues the orphaned job — or parks it as
``TIMEOUT`` once its attempts are spent, so a poison job cannot loop
forever.  Completion is owner-checked: a worker whose lease expired
while it computed gets its :meth:`~JobQueue.complete` rejected, which
is what keeps completion *exactly-once* even when two workers end up
computing the same job (results are content-addressed, so the loser's
work is simply a no-op cache store).

Scheduling: jobs order by ``(effective priority, cost, seq)`` where
``cost`` is the spec's work estimate — cheap, conflict-light jobs go
first for latency, the BUNDLEP-style heuristic — and effective priority
*ages*: a job's priority number drops one band per ``aging_seconds``
waited, so bulk jobs cannot starve behind a flood of urgent ones.

Submission is idempotent: a spec's job id is the SHA-256 of its
canonical work dict, so resubmitting identical work returns the
existing job (and, when it's already ``DONE``, its cached result).
Resubmitting a ``FAILED``/``TIMEOUT`` job revives it with a fresh
attempt budget.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

from ..common import durable
from ..common.errors import ServiceError
from .models import JobRecord, JobSpec, JobState, QueueStats

#: schema version stamped into the DB; a mismatch refuses to open
#: rather than guessing at migration
QUEUE_SCHEMA = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id TEXT PRIMARY KEY,
    spec TEXT NOT NULL,
    state TEXT NOT NULL,
    priority INTEGER NOT NULL,
    cost INTEGER NOT NULL,
    attempts INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    created REAL NOT NULL,
    updated REAL NOT NULL,
    owner TEXT,
    deadline REAL,
    result_key TEXT,
    error TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_sched
    ON jobs (state, priority, cost, seq);
"""

_COLUMNS = (
    "id, spec, state, priority, cost, attempts, max_attempts, seq, "
    "created, updated, owner, deadline, result_key, error"
)


def _record(row: sqlite3.Row | tuple) -> JobRecord:
    (job_id, spec, state, priority, cost, attempts, max_attempts, seq,
     created, updated, owner, deadline, result_key, error) = row
    return JobRecord(
        id=job_id,
        spec=JobSpec.from_dict(json.loads(spec)),
        state=JobState(state),
        priority=priority,
        cost=cost,
        attempts=attempts,
        max_attempts=max_attempts,
        seq=seq,
        created=created,
        updated=updated,
        owner=owner,
        deadline=deadline,
        result_key=result_key,
        error=error,
    )


class JobQueue:
    """The persistent queue; one instance per process, many per DB.

    Thread-safe (an internal lock serializes transactions) and
    multi-process-safe (SQLite's own locking plus a busy timeout).
    ``clock`` is injectable so the state-machine property tests can
    drive lease expiry deterministically.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        lease_seconds: float = 30.0,
        max_attempts: int = 3,
        aging_seconds: float = 60.0,
        clock=time.time,
    ):
        if lease_seconds <= 0:
            raise ServiceError(f"lease_seconds must be > 0, got {lease_seconds}")
        if max_attempts < 1:
            raise ServiceError(f"max_attempts must be >= 1, got {max_attempts}")
        if aging_seconds <= 0:
            raise ServiceError(f"aging_seconds must be > 0, got {aging_seconds}")
        self.path = Path(path)
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.aging_seconds = aging_seconds
        self.clock = clock
        self._lock = threading.RLock()
        self._terminal = threading.Condition(self._lock)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None
        )
        self._conn.execute("PRAGMA busy_timeout = 10000")
        self._conn.execute("PRAGMA journal_mode = WAL")
        # FULL matches the durable layer's fsync discipline; with
        # $REPRO_NO_FSYNC (tmpfs tests, benches) skip the syncs the same
        # way atomic_replace does
        sync = "FULL" if durable.fsync_enabled() else "OFF"
        self._conn.execute(f"PRAGMA synchronous = {sync}")
        with self._lock:
            # executescript commits implicitly, so DDL runs in
            # autocommit (idempotent CREATE IF NOT EXISTS) and the
            # schema stamp gets its own explicit transaction
            self._conn.executescript(_SCHEMA)
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT value FROM meta WHERE key = 'schema'"
                ).fetchone()
                if row is None:
                    self._conn.execute(
                        "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                        (str(QUEUE_SCHEMA),),
                    )
                elif int(row[0]) != QUEUE_SCHEMA:
                    raise ServiceError(
                        f"queue DB {self.path} has schema {row[0]}, "
                        f"this build speaks {QUEUE_SCHEMA}"
                    )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._commit("open")

    # -- transaction plumbing -------------------------------------------

    def _commit(self, op: str) -> None:
        """Commit the open transaction, honoring seeded kill points.

        A kill *before* the commit rolls the whole transition back on
        the next open (SQLite's journal); a kill *after* persists it —
        the two crash shapes every transition must be old-or-new under.
        """
        durable.kill_point(f"queue:{op}:pre-commit")
        self._conn.execute("COMMIT")
        durable.kill_point(f"queue:{op}:post-commit")

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ------------------------------------------------------

    def submit(self, spec: JobSpec) -> tuple[JobRecord, bool]:
        """Enqueue ``spec``; returns ``(record, deduped)``.

        ``deduped`` is True when identical work was already queued (or
        finished) and the existing job was returned.  A terminal
        ``FAILED``/``TIMEOUT`` job is revived instead: state back to
        ``PENDING`` with a fresh attempt budget.
        """
        job_id = spec.job_id()
        now = self.clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    f"SELECT {_COLUMNS} FROM jobs WHERE id = ?", (job_id,)
                ).fetchone()
                if row is not None:
                    record = _record(row)
                    if record.state in (JobState.FAILED, JobState.TIMEOUT):
                        self._conn.execute(
                            "UPDATE jobs SET state = ?, attempts = 0, "
                            "owner = NULL, deadline = NULL, error = NULL, "
                            "updated = ? WHERE id = ?",
                            (JobState.PENDING.value, now, job_id),
                        )
                        self._commit("submit")
                        return self._get_locked(job_id), True
                    self._commit("submit")
                    return record, True
                seq = self._conn.execute(
                    "SELECT COALESCE(MAX(seq), 0) + 1 FROM jobs"
                ).fetchone()[0]
                self._conn.execute(
                    "INSERT INTO jobs (id, spec, state, priority, cost, "
                    "attempts, max_attempts, seq, created, updated) "
                    "VALUES (?, ?, ?, ?, ?, 0, ?, ?, ?, ?)",
                    (
                        job_id,
                        json.dumps(spec.to_dict(), sort_keys=True),
                        JobState.PENDING.value,
                        spec.default_priority(),
                        spec.cost_estimate(),
                        max(self.max_attempts, spec.retries + 1),
                        seq,
                        now,
                        now,
                    ),
                )
                self._commit("submit")
                return self._get_locked(job_id), False
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    # -- claiming / leases ----------------------------------------------

    def expire_leases(self, *, _in_txn: bool = False) -> list[tuple[str, JobState]]:
        """Re-queue (or park as TIMEOUT) every job whose lease lapsed.

        Returns the affected ``(job id, new state)`` pairs.  Run by
        every claim, by the worker pool's idle loop, and by
        ``repro-fsck --repair`` against a downed service's DB.
        """
        now = self.clock()
        with self._lock:
            if not _in_txn:
                self._conn.execute("BEGIN IMMEDIATE")
            try:
                expired = self._conn.execute(
                    "SELECT id, attempts, max_attempts FROM jobs "
                    "WHERE state = ? AND deadline < ? ORDER BY seq",
                    (JobState.RUNNING.value, now),
                ).fetchall()
                transitions: list[tuple[str, JobState]] = []
                for job_id, attempts, max_attempts in expired:
                    new_state = (
                        JobState.TIMEOUT if attempts >= max_attempts
                        else JobState.PENDING
                    )
                    error = (
                        f"lease expired after {attempts} attempt(s)"
                        if new_state is JobState.TIMEOUT else None
                    )
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, owner = NULL, "
                        "deadline = NULL, error = ?, updated = ? WHERE id = ?",
                        (new_state.value, error, now, job_id),
                    )
                    transitions.append((job_id, new_state))
                if not _in_txn:
                    self._commit("expire")
                    if any(s.terminal for _, s in transitions):
                        self._terminal.notify_all()
                return transitions
            except BaseException:
                if not _in_txn:
                    self._conn.execute("ROLLBACK")
                raise

    def claim(self, worker_id: str) -> JobRecord | None:
        """Atomically lease the best runnable job for ``worker_id``.

        Expired leases are reclaimed first (same transaction), then the
        scheduler picks by aged priority, then cost, then submission
        order.  Returns None when nothing is runnable.
        """
        now = self.clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                expired = self.expire_leases(_in_txn=True)
                row = self._conn.execute(
                    "SELECT id FROM jobs WHERE state = ? "
                    "ORDER BY MAX(priority - CAST((? - created) / ? AS INTEGER), 0),"
                    " cost, seq LIMIT 1",
                    (JobState.PENDING.value, now, self.aging_seconds),
                ).fetchone()
                if row is None:
                    self._commit("claim")
                    if any(s.terminal for _, s in expired):
                        self._terminal.notify_all()
                    return None
                job_id = row[0]
                self._conn.execute(
                    "UPDATE jobs SET state = ?, owner = ?, deadline = ?, "
                    "attempts = attempts + 1, updated = ? WHERE id = ?",
                    (
                        JobState.RUNNING.value, worker_id,
                        now + self.lease_seconds, now, job_id,
                    ),
                )
                self._commit("claim")
                if any(s.terminal for _, s in expired):
                    self._terminal.notify_all()
                return self._get_locked(job_id)
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def heartbeat(self, job_id: str, worker_id: str) -> bool:
        """Extend ``worker_id``'s lease; False means the lease is lost.

        A False return tells the worker its job was re-queued from
        under it (it stalled past the lease): it should abandon the
        result — completion would be rejected anyway.
        """
        now = self.clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cursor = self._conn.execute(
                    "UPDATE jobs SET deadline = ?, updated = ? "
                    "WHERE id = ? AND state = ? AND owner = ? AND deadline >= ?",
                    (
                        now + self.lease_seconds, now, job_id,
                        JobState.RUNNING.value, worker_id, now,
                    ),
                )
                self._commit("heartbeat")
                return cursor.rowcount == 1
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    # -- settlement ------------------------------------------------------

    def complete(self, job_id: str, worker_id: str, result_key: str) -> bool:
        """RUNNING → DONE, owner-checked; False when the lease was lost.

        The caller must have journaled the result durably (the
        content-addressed cache store) *before* calling — the crash
        between store and complete re-runs the job into a cache hit,
        which is the no-loss/no-duplication contract.
        """
        now = self.clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cursor = self._conn.execute(
                    "UPDATE jobs SET state = ?, result_key = ?, owner = NULL, "
                    "deadline = NULL, error = NULL, updated = ? "
                    "WHERE id = ? AND state = ? AND owner = ?",
                    (
                        JobState.DONE.value, result_key, now, job_id,
                        JobState.RUNNING.value, worker_id,
                    ),
                )
                self._commit("complete")
                done = cursor.rowcount == 1
                if done:
                    self._terminal.notify_all()
                return done
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def fail(
        self, job_id: str, worker_id: str, error: str, *, transient: bool
    ) -> JobState | None:
        """Settle a failed attempt; returns the new state (None = lease lost).

        Transient failures re-queue while attempts remain (the typed
        retry taxonomy of :func:`repro.common.errors.is_transient`);
        terminal failures — or an exhausted budget — park the job as
        ``FAILED`` with the error recorded for the client.
        """
        now = self.clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT attempts, max_attempts FROM jobs "
                    "WHERE id = ? AND state = ? AND owner = ?",
                    (job_id, JobState.RUNNING.value, worker_id),
                ).fetchone()
                if row is None:
                    self._commit("fail")
                    return None
                attempts, max_attempts = row
                new_state = (
                    JobState.PENDING
                    if transient and attempts < max_attempts
                    else JobState.FAILED
                )
                self._conn.execute(
                    "UPDATE jobs SET state = ?, owner = NULL, deadline = NULL, "
                    "error = ?, updated = ? WHERE id = ?",
                    (new_state.value, error, now, job_id),
                )
                self._commit("fail")
                if new_state.terminal:
                    self._terminal.notify_all()
                return new_state
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    # -- queries ---------------------------------------------------------

    def _get_locked(self, job_id: str) -> JobRecord:
        row = self._conn.execute(
            f"SELECT {_COLUMNS} FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"no such job: {job_id}")
        return _record(row)

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_COLUMNS} FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return _record(row) if row is not None else None

    def list_jobs(
        self, state: JobState | None = None, limit: int = 100
    ) -> list[JobRecord]:
        query = f"SELECT {_COLUMNS} FROM jobs"
        params: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            params = (state.value,)
        query += " ORDER BY seq DESC LIMIT ?"
        with self._lock:
            rows = self._conn.execute(query, params + (limit,)).fetchall()
        return [_record(row) for row in rows]

    def stats(self) -> QueueStats:
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: count for state, count in rows}
        return QueueStats(
            pending=counts.get(JobState.PENDING.value, 0),
            running=counts.get(JobState.RUNNING.value, 0),
            done=counts.get(JobState.DONE.value, 0),
            failed=counts.get(JobState.FAILED.value, 0),
            timeout=counts.get(JobState.TIMEOUT.value, 0),
        )

    def wait_for(self, job_id: str, timeout: float) -> JobRecord | None:
        """Long-poll helper: block until ``job_id`` is terminal.

        Wakes on in-process completions (the worker pool notifies);
        falls back to bounded re-polls so completions written by
        *another* process sharing the DB are seen within 0.25 s.
        Returns the record in whatever state the wait ended.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        with self._terminal:
            while True:
                record = self._get_locked(job_id) if self._exists(job_id) else None
                if record is None or record.state.terminal:
                    return record
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return record
                self._terminal.wait(min(remaining, 0.25))

    def _exists(self, job_id: str) -> bool:
        return self._conn.execute(
            "SELECT 1 FROM jobs WHERE id = ?", (job_id,)
        ).fetchone() is not None
