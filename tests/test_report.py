"""Tests for shape checks, the report generator, and the CLI runners."""

import pytest

from repro.harness import REGISTRY, Settings, run_experiment
from repro.harness.report import build_report, main as report_main
from repro.harness.run import main as run_main
from repro.harness.shapes import CHECKERS, ShapeCheck, run_checks

QUICK = Settings.quick()


class TestShapeChecks:
    def test_every_checker_targets_a_registered_experiment(self):
        assert set(CHECKERS) <= set(REGISTRY)

    def test_unchecked_experiment_returns_empty(self):
        assert run_checks("table1_system_config", []) == []

    @pytest.mark.parametrize(
        "exp_id", ["table3_conflicts", "abl_arc_lazy_clear", "abl_aim_writeback"]
    )
    def test_checks_pass_at_quick_preset(self, exp_id):
        tables = run_experiment(exp_id, QUICK)
        checks = run_checks(exp_id, tables)
        assert checks, exp_id
        for check in checks:
            assert isinstance(check, ShapeCheck)
            assert check.passed, (exp_id, check.claim, check.detail)


class TestReport:
    def test_build_report_subset(self):
        text = build_report(QUICK, ["table1_system_config", "table3_conflicts"])
        assert "# Experiment report" in text
        assert "table3_conflicts" in text
        assert "Shape checks passed" in text
        assert "FAIL" not in text

    def test_report_cli_writes_file(self, tmp_path):
        out = tmp_path / "report.md"
        rc = report_main(
            ["--preset", "quick", "--out", str(out), "table1_system_config"]
        )
        assert rc == 0
        assert "Table I" in out.read_text()


class TestRunCli:
    def test_list(self, capsys):
        assert run_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig_perf_16" in out
        assert "table3_conflicts" in out

    def test_no_args_lists(self, capsys):
        assert run_main([]) == 0
        assert "experiment id" in capsys.readouterr().out

    def test_run_one(self, capsys):
        assert run_main(["table1_system_config", "--preset", "quick"]) == 0
        out = capsys.readouterr().out
        assert "simulated system parameters" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_main(["bogus", "--preset", "quick"])

    def test_threads_override(self, capsys):
        assert run_main(
            ["table1_system_config", "--preset", "quick", "--threads", "8"]
        ) == 0
        assert "8 in-order" in capsys.readouterr().out
