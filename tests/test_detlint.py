"""Determinism lint tests: the AST checker and its CLI."""

import json
import textwrap
from pathlib import Path

from repro.tools.detlint import DEFAULT_PATHS, lint_paths, lint_source, main


def lint(snippet: str):
    return lint_source(textwrap.dedent(snippet), "<test>")


class TestSetIteration:
    def test_for_over_set_literal(self):
        findings = lint("""
            for x in {1, 2, 3}:
                print(x)
        """)
        assert [f.code for f in findings] == ["DET001"]

    def test_for_over_set_call(self):
        findings = lint("""
            pending = set()
            for x in pending:
                pass
        """)
        assert [f.code for f in findings] == ["DET001"]

    def test_comprehension_over_set_comp(self):
        findings = lint("""
            out = [x for x in {a for a in range(4)}]
        """)
        assert [f.code for f in findings] == ["DET001"]

    def test_self_attribute_assigned_a_set(self):
        findings = lint("""
            class P:
                def __init__(self):
                    self.dirty = set()
                def flush(self):
                    for line in self.dirty:
                        pass
        """)
        assert [f.code for f in findings] == ["DET001"]

    def test_annotated_set_attribute(self):
        findings = lint("""
            class P:
                def __init__(self):
                    self.log: set[int] = something()
                def clear(self):
                    for line in self.log:
                        pass
        """)
        assert [f.code for f in findings] == ["DET001"]

    def test_subscript_of_per_core_set_list(self):
        findings = lint("""
            class P:
                def __init__(self, n):
                    self.spill = [set() for _ in range(n)]
                def clear(self, core):
                    for line in self.spill[core]:
                        pass
        """)
        assert [f.code for f in findings] == ["DET001"]

    def test_sorted_wrap_is_clean(self):
        findings = lint("""
            pending = set()
            for x in sorted(pending):
                pass
        """)
        assert findings == []

    def test_dict_and_list_iteration_are_clean(self):
        findings = lint("""
            d = {}
            xs = [1, 2]
            for k in d:
                pass
            for x in xs:
                pass
        """)
        assert findings == []


class TestIdCalls:
    def test_id_call_flagged(self):
        findings = lint("""
            key = id(obj)
        """)
        assert [f.code for f in findings] == ["DET002"]

    def test_shadowed_id_still_flagged_conservatively(self):
        # the lint is syntactic by design; a local `id` shadow is rare
        # enough in this codebase that the pragma covers it
        findings = lint("""
            table[id(entry)] = entry
        """)
        assert [f.code for f in findings] == ["DET002"]


class TestPragma:
    def test_pragma_suppresses(self):
        findings = lint("""
            pending = set()
            for x in pending:  # detlint: ok
                pass
        """)
        assert findings == []

    def test_pragma_is_line_scoped(self):
        findings = lint("""
            pending = set()
            for x in pending:  # detlint: ok
                pass
            for y in pending:
                pass
        """)
        assert len(findings) == 1


class TestFilesystemIteration:
    def test_glob_flagged(self):
        findings = lint("""
            import glob
            for name in glob.glob("*.json"):
                pass
        """)
        assert [f.code for f in findings] == ["DET003"]

    def test_listdir_and_scandir_flagged(self):
        findings = lint("""
            import os
            names = os.listdir(".")
            entries = os.scandir(".")
        """)
        assert [f.code for f in findings] == ["DET003", "DET003"]

    def test_path_methods_flagged(self):
        findings = lint("""
            from pathlib import Path
            for p in Path(".").iterdir():
                pass
            files = root.rglob("*.py")
            more = root.glob("*.npz")
        """)
        assert [f.code for f in findings] == ["DET003"] * 3

    def test_sorted_wrap_blesses(self):
        findings = lint("""
            import glob, os
            from pathlib import Path
            for name in sorted(glob.glob("*.json")):
                pass
            names = sorted(os.listdir("."))
            files = sorted(Path(".").rglob("*.py"))
        """)
        assert findings == []

    def test_sorted_blesses_nested_calls(self):
        findings = lint("""
            xs = sorted(p.name for p in root.iterdir())
            ys = sorted(root.glob("*.py"), key=str)
        """)
        assert findings == []

    def test_pragma_suppresses_fs_finding(self):
        findings = lint("""
            import os
            names = os.listdir(".")  # detlint: ok
        """)
        assert findings == []


class TestRepoIsClean:
    def test_default_paths_have_no_findings(self):
        assert lint_paths(list(DEFAULT_PATHS)) == []

    def test_default_paths_cover_harness_and_tools(self):
        assert "src/repro/harness" in DEFAULT_PATHS
        assert "src/repro/tools" in DEFAULT_PATHS

    def test_every_package_is_lint_covered_or_exempt(self):
        """Adding a new src/repro package must be a conscious lint
        decision: either it joins DEFAULT_PATHS or the exemption list
        below (with a reason)."""
        # determinism is enforced elsewhere for these: pure data /
        # leaf-arithmetic modules with no iteration-driven schedules
        # (common, mem, noc, trace, energy, verify), report-side
        # consumers of already-deterministic artifacts (analysis,
        # synth), and the modelcheck explorer whose BFS order is pinned
        # by its own determinism tests
        exempt = {
            "analysis", "common", "energy", "mem", "modelcheck", "noc",
            "synth", "trace", "verify",
        }
        covered = {Path(p).name for p in DEFAULT_PATHS}
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        packages = {
            child.name for child in src.iterdir()
            if child.is_dir() and (child / "__init__.py").exists()
        }
        assert packages == covered | exempt
        assert not covered & exempt


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_three(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("for x in {1, 2}:\n    pass\n")
        assert main([str(bad)]) == 3
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "1 finding(s)" in out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("k = id(x)\n")
        assert main([str(bad), "--format", "json"]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["code"] == "DET002"
        assert payload[0]["line"] == 1


class TestBareWrites:
    """ROB004: tearable writes inside durable-artifact modules."""

    def lint_durable(self, snippet):
        return lint_source(
            textwrap.dedent(snippet), "src/repro/harness/x.py"
        )

    def test_open_write_mode_flagged(self):
        for mode in ("w", "wb", "a", "x", "r+"):
            findings = self.lint_durable(f"""
                with open(p, "{mode}") as fh:
                    fh.write(data)
            """)
            assert [f.code for f in findings] == ["ROB004"], mode

    def test_open_mode_keyword_flagged(self):
        findings = self.lint_durable("""
            fh = open(p, mode="w")
        """)
        assert [f.code for f in findings] == ["ROB004"]

    def test_write_text_and_bytes_flagged(self):
        findings = self.lint_durable("""
            p.write_text(body)
            p.write_bytes(blob)
        """)
        assert [f.code for f in findings] == ["ROB004", "ROB004"]

    def test_path_open_write_flagged(self):
        findings = self.lint_durable("""
            with p.open("ab") as fh:
                fh.write(frame)
        """)
        assert [f.code for f in findings] == ["ROB004"]

    def test_reads_are_clean(self):
        findings = self.lint_durable("""
            a = open(p).read()
            b = open(p, "rb").read()
            with p.open() as fh:
                c = fh.read()
            d = p.read_text()
        """)
        assert findings == []

    def test_out_of_scope_modules_are_clean(self):
        snippet = 'p.write_text(body)\n'
        assert lint_source(snippet, "src/repro/core/x.py") == []
        assert lint_source(snippet, "src/repro/harness/x.py") != []
        assert lint_source(snippet, "src/repro/tools/x.py") != []

    def test_pragma_suppresses(self):
        findings = self.lint_durable("""
            p.write_bytes(b"junk")  # detlint: ok - deliberate corruption
        """)
        assert findings == []
