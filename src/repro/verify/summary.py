"""Conflict-report summarization.

Turns a run's raw :class:`~repro.common.errors.ConflictRecord` list into
the aggregates a developer debugging a racy program wants: per-line
totals, kind mix, detection mechanisms, involved cores, and earliest
detection cycle.  Used by ``python -m repro.tools.conflicts`` and the
conflicts-detected table.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..common.errors import ConflictRecord
from ..harness.tables import TextTable


@dataclass
class LineSummary:
    """All conflicts observed on one cache line."""

    line: int
    count: int = 0
    kinds: Counter = field(default_factory=Counter)
    detectors: Counter = field(default_factory=Counter)
    cores: set[int] = field(default_factory=set)
    byte_mask: int = 0
    first_cycle: int | None = None

    def add(self, record: ConflictRecord) -> None:
        self.count += 1
        self.kinds[record.kind()] += 1
        self.detectors[record.detected_by] += 1
        self.cores.add(record.first_core)
        self.cores.add(record.second_core)
        self.byte_mask |= record.byte_mask
        if self.first_cycle is None or record.cycle < self.first_cycle:
            self.first_cycle = record.cycle


def summarize(conflicts: list[ConflictRecord]) -> dict[int, LineSummary]:
    """Group conflicts by line."""
    by_line: dict[int, LineSummary] = {}
    for record in conflicts:
        summary = by_line.get(record.line_addr)
        if summary is None:
            summary = LineSummary(line=record.line_addr)
            by_line[record.line_addr] = summary
        summary.add(record)
    return by_line


def summary_table(conflicts: list[ConflictRecord]) -> TextTable:
    """Render the per-line conflict report."""
    table = TextTable(
        "Region conflicts by line",
        ["line", "conflicts", "kinds", "cores", "bytes", "first cycle", "via"],
    )
    by_line = summarize(conflicts)
    for line in sorted(by_line):
        s = by_line[line]
        table.add_row(
            f"{line:#x}",
            s.count,
            ",".join(f"{k}:{n}" for k, n in sorted(s.kinds.items())),
            len(s.cores),
            s.byte_mask.bit_count(),
            s.first_cycle if s.first_cycle is not None else -1,
            ",".join(sorted(s.detectors)),
        )
    return table


def kind_mix(conflicts: list[ConflictRecord]) -> dict[str, int]:
    """Counts of W-W / R-W / W-R conflicts."""
    mix = Counter(record.kind() for record in conflicts)
    return dict(mix)
