"""Property suite for the batch engine's line classifier.

The classifier (``repro.core.batch.classify_program``) is the batch
engine's load-bearing wall: a line wrongly called private or read-only
shared would let the fast path skip protocol work that matters.  These
properties pin its semantics against an independent pure-Python oracle
over hypothesis-generated programs:

* the classification is a *partition* — every accessed line gets exactly
  one code, and every access event is either a fast-path candidate or
  residue, never both, never neither;
* ``PRIVATE(t)`` really means a single toucher, ``RO_SHARED`` really
  means multi-thread and never written;
* replaying with every line demoted to the residue tier equals the full
  scalar replay (the fast path is an optimization, not a semantics).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ProtocolKind, SystemConfig, TraceBuilder
from repro.core.batch import (
    CONTENDED,
    RO_SHARED,
    BatchSimulator,
    classify_program,
)
from repro.core.simulator import Simulator
from repro.trace.program import Program
from repro.verify.diffengine import render_result

LINE = 64

#: small pool so lines get revisited across threads
_LINES = [0x1000 + i * LINE for i in range(8)]

_op = st.tuples(
    st.integers(0, len(_LINES) - 1),
    st.integers(0, 7),  # word offset
    st.booleans(),  # is write
)


def _build(thread_ops):
    traces = []
    for ops in thread_ops:
        b = TraceBuilder()
        for li, word, iswr in ops:
            addr = _LINES[li] + word * 8
            if iswr:
                b.write(addr, size=8)
            else:
                b.read(addr, size=8)
        traces.append(b.build())
    return Program(traces, name="classify-fuzz")


def _oracle(thread_ops):
    """Independent per-line ground truth: sets of touching threads and
    an ever-written flag, computed the obvious scalar way."""
    touched: dict[int, set[int]] = {}
    written: set[int] = set()
    for tid, ops in enumerate(thread_ops):
        for li, _word, iswr in ops:
            line = _LINES[li]
            touched.setdefault(line, set()).add(tid)
            if iswr:
                written.add(line)
    return touched, written


@settings(max_examples=60, deadline=None)
@given(
    thread_ops=st.lists(
        st.lists(_op, min_size=0, max_size=30), min_size=1, max_size=4
    )
)
def test_classification_matches_oracle(thread_ops):
    prog = _build(thread_ops)
    cls = classify_program(prog, LINE)
    touched, written = _oracle(thread_ops)

    # exactly the accessed lines, each once, sorted
    assert cls.lines.tolist() == sorted(touched)
    assert len(cls.lines) == len(cls.codes)

    for line, threads in touched.items():
        code = cls.code_of(line)
        if len(threads) == 1:
            (only,) = threads
            assert code == only, f"single-toucher line {line:#x} not private"
        elif line in written:
            assert code == CONTENDED
        else:
            assert code == RO_SHARED

    counts = cls.counts()
    assert sum(counts.values()) == len(cls.lines)
    assert counts["private"] == sum(1 for t in touched.values() if len(t) == 1)


@settings(max_examples=60, deadline=None)
@given(
    thread_ops=st.lists(
        st.lists(_op, min_size=1, max_size=30), min_size=2, max_size=3
    )
)
def test_event_partition_fast_vs_residue(thread_ops):
    """Every access event lands in exactly one tier.  Recomputed from
    the oracle, not from the classifier, so a code that is wrong in a
    way the per-event rule happens to tolerate still fails here."""
    prog = _build(thread_ops)
    cls = classify_program(prog, LINE)
    touched, written = _oracle(thread_ops)
    for tid, ops in enumerate(thread_ops):
        for li, _word, iswr in ops:
            line = _LINES[li]
            code = cls.code_of(line)
            fast = (code == tid) or (not iswr and code == RO_SHARED)
            threads = touched[line]
            oracle_fast = (threads == {tid}) or (
                not iswr and len(threads) > 1 and line not in written
            )
            assert fast == oracle_fast, (
                f"tier mismatch: line {line:#x} tid {tid} "
                f"write={iswr} code={code}"
            )


@settings(max_examples=25, deadline=None)
@given(
    thread_ops=st.lists(
        st.lists(_op, min_size=1, max_size=40), min_size=2, max_size=3
    ),
    proto=st.sampled_from([ProtocolKind.MESI, ProtocolKind.CEPLUS, ProtocolKind.ARC]),
)
def test_residue_only_replay_equals_scalar(thread_ops, proto):
    """Demote *every* line to the residue tier: the batch engine then
    degenerates to the scalar engine event for event, so the rendering
    must equal a genuine scalar run — proving the residue tier alone is
    the exact protocol model, with no fast-path state leaking in."""
    prog = _build(thread_ops)
    cores = 1 << (len(thread_ops) - 1).bit_length()  # mesh wants a power of two
    cfg = SystemConfig(num_cores=max(cores, 2), protocol=proto)
    scalar = render_result(Simulator(cfg, prog).run())
    all_lines = [int(a) for a in classify_program(prog, LINE).lines]
    demoted = BatchSimulator(cfg, prog, force_residue_lines=all_lines)
    assert render_result(demoted.run()) == scalar
    # and the normal batch run matches both
    assert render_result(BatchSimulator(cfg, prog).run()) == scalar


def test_forced_lines_marked_ineligible():
    """``force_residue_lines`` must reach the window eligibility mask:
    with every line forced, no access position may remain fast-path
    eligible."""
    ops = [[(i % 4, i % 8, i % 3 == 0) for i in range(64)] for _ in range(2)]
    prog = _build(ops)
    cfg = SystemConfig(num_cores=2)
    all_lines = [int(a) for a in classify_program(prog, LINE).lines]
    sim = BatchSimulator(cfg, prog, force_residue_lines=all_lines)
    win = sim._advance_window(0, 0)
    assert win.bad == list(range(win.end - win.start))


def test_empty_program_classification():
    b = TraceBuilder()
    b.barrier(0)
    prog = Program([b.build()], name="sync-only")
    cls = classify_program(prog, LINE)
    assert len(cls.lines) == 0
    assert cls.code_of(0x1000) == CONTENDED
    assert cls.codes_for(np.asarray([0x1000], dtype=np.uint64)).tolist() == [
        CONTENDED
    ]
