"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.config import SystemConfig
from repro.core.machine import Machine


@pytest.fixture
def cfg2() -> SystemConfig:
    """A tiny 2-core system."""
    return SystemConfig(num_cores=2)


@pytest.fixture
def cfg4() -> SystemConfig:
    return SystemConfig(num_cores=4)


@pytest.fixture
def cfg8() -> SystemConfig:
    return SystemConfig(num_cores=8)


@pytest.fixture
def machine4(cfg4) -> Machine:
    return Machine(cfg4)
