"""Correctness tests for the on-disk result cache.

Cold runs populate, warm runs hit with identical metrics, every input
that affects a simulation changes the key, and corrupted entries are
discarded and recomputed — never trusted.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import replace

import pytest

from repro.common.config import AimConfig, ProtocolKind, SystemConfig
from repro.common.config import config_fingerprint
from repro.harness import Executor, ResultCache, SimPoint, WorkloadSpec
from repro.harness.result_cache import CACHE_SALT, point_key


def spec(seed=1, scale=0.05, name="lock-counter", threads=2, **params):
    return WorkloadSpec.make(
        name, num_threads=threads, seed=seed, scale=scale, **params
    )


def cfg(**kw):
    return SystemConfig(num_cores=2, **kw)


class TestColdWarm:
    def test_cold_populates_warm_hits_identically(self, tmp_path):
        cache = ResultCache(tmp_path)
        ex = Executor(jobs=1, cache=cache)
        cold = ex.run(cfg(), spec())
        assert cache.stats.stores == 1
        assert cache.stats.hits == 0

        warm = ex.run(cfg(), spec())
        assert cache.stats.hits == 1
        assert warm.summary() == cold.summary()
        assert [e.status for e in ex.manifest.entries] == ["miss", "hit"]

    def test_warm_hit_across_executor_instances(self, tmp_path):
        first = Executor(jobs=1, cache=ResultCache(tmp_path))
        cold = first.run(cfg(), spec())
        second = Executor(jobs=1, cache=ResultCache(tmp_path))
        warm = second.run(cfg(), spec())
        assert second.cache.stats.hits == 1
        assert second.cache.stats.misses == 0
        assert warm.summary() == cold.summary()

    def test_comparison_hits_whole_batch(self, tmp_path):
        cache = ResultCache(tmp_path)
        ex = Executor(jobs=1, cache=cache)
        cold = ex.compare(cfg(), spec())
        warm = ex.compare(cfg(), spec())
        assert warm.summaries() == cold.summaries()
        assert cache.stats.hits == len(cold.results)

    def test_workload_stats_cached(self, tmp_path):
        ex = Executor(jobs=1, cache=ResultCache(tmp_path))
        cold = ex.workload_stats(spec())
        warm = ex.workload_stats(spec())
        assert warm == cold
        assert ex.cache.stats.hits == 1


class TestKeying:
    def test_key_is_stable(self):
        assert point_key(cfg(), spec().fingerprint()) == point_key(
            cfg(), spec().fingerprint()
        )

    @pytest.mark.parametrize(
        "variant",
        [
            cfg(protocol=ProtocolKind.CE),  # protocol
            cfg(aim=AimConfig(size=64 * 1024)),  # nested config field
            cfg(metadata_bytes=16),  # scalar config field
            replace(cfg(), arc_lazy_clear=False),  # flag
            SystemConfig(num_cores=4),  # geometry
        ],
    )
    def test_config_changes_key(self, variant):
        base_key = point_key(cfg(), spec().fingerprint())
        assert point_key(variant, spec().fingerprint()) != base_key

    @pytest.mark.parametrize(
        "variant",
        [
            spec(seed=2),  # seed
            spec(scale=0.1),  # scale
            spec(name="pipeline-ferret"),  # workload
            spec(threads=4),  # thread count
            spec(rounds=7),  # generator param
        ],
    )
    def test_workload_changes_key(self, variant):
        base_key = point_key(cfg(), spec().fingerprint())
        assert point_key(cfg(), variant.fingerprint()) != base_key

    def test_config_fingerprint_detects_every_field(self):
        base = config_fingerprint(cfg())
        assert config_fingerprint(cfg()) == base
        assert config_fingerprint(cfg(use_owned_state=True)) != base

    def test_program_and_spec_key_spaces_disjoint(self):
        """A prebuilt program never aliases a spec-built point's key."""
        built = spec().build()
        assert SimPoint(cfg(), spec()).key() != SimPoint(cfg(), built).key()

    def test_identical_programs_share_keys(self):
        a, b = spec().build(), spec().build()
        assert SimPoint(cfg(), a).key() == SimPoint(cfg(), b).key()


class TestCorruption:
    def _entry_path(self, cache: ResultCache):
        files = [p for p in cache.root.rglob("*.pkl")]
        assert len(files) == 1
        return files[0]

    def _assert_recomputed(self, tmp_path, corrupt):
        cache = ResultCache(tmp_path)
        ex = Executor(jobs=1, cache=cache)
        cold = ex.run(cfg(), spec())
        corrupt(self._entry_path(cache))

        fresh = ResultCache(tmp_path)
        again = Executor(jobs=1, cache=fresh).run(cfg(), spec())
        assert fresh.stats.discarded == 1
        assert fresh.stats.hits == 0
        assert fresh.stats.stores == 1  # recomputed and re-stored
        assert again.summary() == cold.summary()
        # and the rewritten entry is trusted again
        final = ResultCache(tmp_path)
        assert Executor(jobs=1, cache=final).run(cfg(), spec()) is not None
        assert final.stats.hits == 1

    def test_truncated_entry_recomputed(self, tmp_path):
        self._assert_recomputed(
            tmp_path, lambda p: p.write_bytes(p.read_bytes()[: len(p.read_bytes()) // 2])
        )

    def test_garbage_entry_recomputed(self, tmp_path):
        self._assert_recomputed(tmp_path, lambda p: p.write_bytes(b"not a cache entry"))

    def test_flipped_payload_byte_recomputed(self, tmp_path):
        def flip(p):
            blob = bytearray(p.read_bytes())
            blob[-1] ^= 0xFF
            p.write_bytes(bytes(blob))

        self._assert_recomputed(tmp_path, flip)

    def test_wrong_payload_type_recomputed(self, tmp_path):
        def swap(p):
            import hashlib

            payload = pickle.dumps(
                {"key": p.parent.name + p.stem, "salt": CACHE_SALT,
                 "result": "not a RunResult"}
            )
            p.write_bytes(
                hashlib.sha256(payload).hexdigest().encode() + b"\n" + payload
            )

        self._assert_recomputed(tmp_path, swap)

    def test_corrupt_entry_removed_from_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        ex = Executor(jobs=1, cache=cache)
        ex.run(cfg(), spec())
        path = self._entry_path(cache)
        path.write_bytes(b"junk")
        assert ResultCache(tmp_path).get(path.parent.name + path.stem) is None
        assert not path.exists()


class TestDurability:
    def test_killed_store_leaves_cache_clean_after_reopen(self, tmp_path):
        """A worker SIGKILLed mid-store leaves only .tmp-* residue — no
        torn entry — and the reopen GC sweep reclaims it."""
        import os
        import subprocess
        import sys
        import textwrap

        from repro.common.durable import KILLPOINT_EXIT_STATUS

        code = textwrap.dedent("""
            from repro.harness import KillPlan
            from repro.harness.result_cache import ResultCache
            import sys
            KillPlan(seed=1, rate=1.0, tear_rate=1.0,
                     sites="cache-entry").install()
            ResultCache(sys.argv[1]).put("ab" * 32, {"x": 1})
            sys.exit(99)  # unreachable: the store must die
        """)
        proc = subprocess.run(
            [sys.executable, "-c", code, str(tmp_path)],
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert proc.returncode == KILLPOINT_EXIT_STATUS
        # the tear left tmp residue but never a (torn) entry file
        assert list(tmp_path.rglob(".tmp-*"))
        assert not list(tmp_path.rglob("*.pkl"))

        cache = ResultCache.open(tmp_path, gc_tmp_age=0)
        assert cache.stats.tmp_reclaimed == 1
        assert not list(tmp_path.rglob(".tmp-*"))
        assert cache.get("ab" * 32) is None  # plain miss, not garbage

    def test_gc_age_gate_protects_live_writers(self, tmp_path):
        shard = tmp_path / "ab"
        shard.mkdir(parents=True)
        (shard / ".tmp-inflight").write_bytes(b"live writer")
        cache = ResultCache.open(tmp_path)  # default hour-long gate
        assert cache.stats.tmp_reclaimed == 0
        assert (shard / ".tmp-inflight").exists()
        assert cache.gc_stale_tmps(0) == [shard / ".tmp-inflight"]

    def test_put_then_crash_is_old_or_new(self, tmp_path):
        """Overwriting an entry under a mid-replace tear keeps the old
        bytes intact — a reader never sees a torn mix."""
        import os
        import subprocess
        import sys
        import textwrap

        from repro.common.durable import KILLPOINT_EXIT_STATUS

        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"generation": 1})
        before = cache.path_for(key).read_bytes()
        code = textwrap.dedent("""
            from repro.harness import KillPlan
            from repro.harness.result_cache import ResultCache
            import sys
            KillPlan(seed=3, rate=1.0, tear_rate=1.0,
                     sites="cache-entry").install()
            ResultCache(sys.argv[1]).put("cd" * 32, {"generation": 2})
            sys.exit(99)
        """)
        proc = subprocess.run(
            [sys.executable, "-c", code, str(tmp_path)],
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert proc.returncode == KILLPOINT_EXIT_STATUS
        assert cache.path_for(key).read_bytes() == before
        assert ResultCache(tmp_path).get(key, expect=dict) == {"generation": 1}


class TestManifest:
    def test_manifest_json_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ex = Executor(jobs=1, cache=cache)
        ex.compare(cfg(), spec())
        ex.compare(cfg(), spec())
        out = ex.manifest.write(tmp_path / "manifest.json")
        data = json.loads(out.read_text())
        assert data["points"] == len(ex.manifest.entries)
        assert data["hits"] == 4
        assert data["misses"] == 4
        assert data["cache_dir"] == str(cache.root)
        statuses = [e["status"] for e in data["entries"]]
        assert statuses == ["miss"] * 4 + ["hit"] * 4
        for entry in data["entries"]:
            assert len(entry["key"]) == 64
            assert entry["seconds"] >= 0
            assert entry["protocol"] in ("mesi", "ce", "ce+", "arc")

    def test_write_merged_preserves_other_runs_entries(self, tmp_path):
        """Concurrent sweeps sharing a cache dir must not erase each
        other's manifest entries; overlapping keys take this run's
        record and counts are recomputed over the merged set."""
        from repro.harness.executor import Manifest, ManifestEntry

        path = tmp_path / "manifest.json"
        first = Manifest(jobs=1)
        first.entries = [
            ManifestEntry("a" * 64, "w1", "mesi", "miss", 0.5),
            ManifestEntry("b" * 64, "w2", "ce", "miss", 0.25),
        ]
        first.write_merged(path)
        second = Manifest(jobs=2)
        second.entries = [
            ManifestEntry("b" * 64, "w2", "ce", "hit", 0.01),  # overlap
            ManifestEntry("c" * 64, "w3", "arc", "miss", 0.125),
        ]
        out = json.loads(second.write_merged(path).read_text())
        assert out["runs"] == 2
        assert out["points"] == 3
        assert out["hits"] == 1
        assert out["misses"] == 2
        by_key = {e["key"]: e for e in out["entries"]}
        assert by_key["a" * 64]["workload"] == "w1"  # preserved
        assert by_key["b" * 64]["status"] == "hit"  # this run wins
        assert out["seconds"] == 0.635

    def test_eviction_counts_are_per_executor_not_cumulative(self, tmp_path):
        """Many short-lived executors over one long-lived cache — the
        service-worker workload — must not re-report (and write_merged
        must not re-sum) evictions witnessed by earlier executors.

        Regression: corrupt_evictions was copied from the *cumulative*
        cache counter, so one real eviction inflated by one per
        subsequent executor sharing the cache instance."""
        cache = ResultCache(tmp_path / "cache")
        manifest_path = cache.root / "manifest.json"
        point = SimPoint(cfg(), spec())

        first = Executor(jobs=1, cache=cache)
        first.run_points([point])
        cache.corrupt_entry(point.key())

        witness = Executor(jobs=1, cache=cache)
        witness.run_points([point])  # detects, evicts, recomputes
        assert witness.manifest.corrupt_evictions == 1
        witness.manifest.write_merged(manifest_path)

        for _ in range(4):  # clean, short-lived, all pure cache hits
            ex = Executor(jobs=1, cache=cache)
            ex.run_points([point])
            assert ex.manifest.corrupt_evictions == 0
            ex.manifest.write_merged(manifest_path)

        merged = json.loads(manifest_path.read_text())
        assert merged["runs"] == 5
        assert merged["corrupt_evictions"] == 1  # the one real eviction
        assert cache.stats.discarded == 1
