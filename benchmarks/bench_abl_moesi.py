"""Bench: MESI vs MOESI baseline ablation.

Expected shape: the Owned state eliminates read-triggered downgrade
writebacks entirely.  Traffic drops where producers re-dirty shared
lines (stencil, migratory); on read-mostly patterns MOESI's
forward-from-owner can cost marginally more than MESI's LLC sourcing —
the classic MOESI trade-off — so the bound there is a small epsilon.
"""


def test_abl_moesi(run_exp):
    (table,) = run_exp("abl_moesi")
    by_workload: dict[str, dict[str, dict]] = {}
    for workload, variant, cycles, flit_hops, downgrades in table.rows:
        by_workload.setdefault(workload, {})[variant] = {
            "cycles": cycles,
            "flit_hops": flit_hops,
            "downgrades": downgrades,
        }
    for workload, variants in by_workload.items():
        mesi, moesi = variants["MESI"], variants["MOESI"]
        assert moesi["downgrades"] == 0, workload
        assert moesi["flit_hops"] <= mesi["flit_hops"] * 1.03, workload
    # the write-then-reshare patterns must actually improve
    for workload in ("stencil-ocean", "migratory-token"):
        variants = by_workload[workload]
        assert variants["MOESI"]["flit_hops"] < variants["MESI"]["flit_hops"]
