"""Ported mini-benchmarks captured as real threaded Python programs.

Each function runs an actual multithreaded algorithm — real control
flow, real shared data structures, real lock/barrier/condition usage —
under a :class:`~repro.capture.session.CaptureSession` and returns the
captured :class:`~repro.trace.program.Program`.  These are the capture
subsystem's analogue of the paper's PARSEC/SPLASH-2 ports:

* :func:`capture_histogram` — block-partitioned histogram with a
  lock-sharded merge phase (canonical reduction).
* :func:`capture_blackscholes` — embarrassingly parallel option
  pricing map with a progress counter (PARSEC ``blackscholes`` shape).
* :func:`capture_pipeline` — bounded-buffer producer/consumer pipeline
  on a condition variable (PARSEC ``ferret``/``dedup`` shape).
* :func:`capture_workqueue` — work-stealing task queue with per-thread
  deques (Cilk-style runtime shape; schedule-dependent, which is why
  capture needs the deterministic scheduler).

All functions share the ``(num_threads, seed, scale, ...)`` signature
of synthetic generators, and :mod:`repro.synth.captured` registers them
in the workload registry under ``capture-*`` names.
"""

from __future__ import annotations

from ..common.errors import CaptureError
from ..common.rng import make_rng
from ..synth.base import scaled
from ..trace.program import Program
from .session import CaptureSession

#: bins in the captured histogram (two cache lines of 8-byte counters)
HISTOGRAM_BINS = 16


def capture_histogram(
    num_threads: int = 4,
    seed: int = 1,
    scale: float = 1.0,
    *,
    items_per_thread: int = 400,
    stream_to=None,
) -> Program:
    """Block-partitioned histogram with a sharded merge.

    Each thread scans its slice of a shared input array, accumulates
    into private Python bins (untraced, like registers), then merges
    into the shared histogram taking one lock per bin shard.  A barrier
    separates the scan+merge phase from a final verification read.
    """
    session = CaptureSession(
        num_threads, seed=seed, name="capture-histogram", stream_to=stream_to
    )
    count = num_threads * scaled(items_per_thread, scale, minimum=8)
    rng = make_rng(seed, "capture", "histogram", "data")
    data = session.array(
        count, name="data", values=rng.integers(0, 256, size=count).tolist()
    )
    hist = session.array(HISTOGRAM_BINS, name="hist")
    shards = [session.lock() for _ in range(4)]
    done = session.barrier()
    total = session.struct(("checksum",), name="total")

    per_thread = count // num_threads

    def worker(tid: int) -> None:
        lo = tid * per_thread
        hi = count if tid == num_threads - 1 else lo + per_thread
        local = [0] * HISTOGRAM_BINS
        for i in range(lo, hi):
            value = data[i]
            session.compute(2)
            local[value * HISTOGRAM_BINS // 256] += 1
        shard_size = HISTOGRAM_BINS // len(shards)
        for shard, lock in enumerate(shards):
            with lock:
                for b in range(shard * shard_size, (shard + 1) * shard_size):
                    if local[b]:
                        hist.add(b, local[b])
        done.wait()
        if tid == 0:
            checksum = 0
            for b in range(HISTOGRAM_BINS):
                checksum += hist[b]
            total.checksum = checksum
        done.wait()

    program = session.run(worker)
    if stream_to is None and total.peek("checksum") != count:
        raise CaptureError(
            f"histogram lost updates: {total.peek('checksum')} != {count}"
        )
    return program


def capture_blackscholes(
    num_threads: int = 4,
    seed: int = 1,
    scale: float = 1.0,
    *,
    options_per_thread: int = 300,
    report_every: int = 64,
    stream_to=None,
) -> Program:
    """Data-parallel option-pricing map with a shared progress counter.

    Threads price disjoint slices of a shared options array (read
    input, compute, write result — the PARSEC ``blackscholes`` pattern)
    and periodically bump a lock-protected progress counter, giving the
    otherwise conflict-free map a light locking pulse.
    """
    session = CaptureSession(
        num_threads, seed=seed, name="capture-blackscholes", stream_to=stream_to
    )
    count = num_threads * scaled(options_per_thread, scale, minimum=8)
    rng = make_rng(seed, "capture", "blackscholes", "options")
    spots = session.array(
        count, name="spots", values=rng.integers(10, 200, size=count).tolist()
    )
    strikes = session.array(
        count, name="strikes", values=rng.integers(10, 200, size=count).tolist()
    )
    prices = session.array(count, name="prices")
    progress = session.struct(("priced",), name="progress")
    progress_lock = session.lock()
    done = session.barrier()

    per_thread = count // num_threads

    def worker(tid: int) -> None:
        lo = tid * per_thread
        hi = count if tid == num_threads - 1 else lo + per_thread
        since_report = 0
        for i in range(lo, hi):
            spot = spots[i]
            strike = strikes[i]
            # a cheap stand-in for the closed-form price: intrinsic
            # value plus a convexity fudge, all integer math
            session.compute(24)
            price = max(spot - strike, 0) + (spot * strike) // 512
            prices[i] = price
            since_report += 1
            if since_report == report_every:
                with progress_lock:
                    progress.priced += since_report
                since_report = 0
        if since_report:
            with progress_lock:
                progress.priced += since_report
        done.wait()

    program = session.run(worker)
    if stream_to is None and progress.peek("priced") != count:
        raise CaptureError(
            f"blackscholes lost updates: {progress.peek('priced')} != {count}"
        )
    return program


def capture_pipeline(
    num_threads: int = 4,
    seed: int = 1,
    scale: float = 1.0,
    *,
    items_per_producer: int = 150,
    queue_capacity: int = 8,
    stream_to=None,
) -> Program:
    """Bounded-buffer producer/consumer pipeline on a condition variable.

    The first half of the threads produce seeded work items into a
    shared ring buffer, the second half consume and fold them into a
    shared sink; ``not_full`` / ``not_empty`` conditions on one queue
    lock coordinate, exactly like ``queue.Queue``'s internals.
    """
    if num_threads < 2:
        raise CaptureError("capture-pipeline needs at least 2 threads")
    session = CaptureSession(
        num_threads, seed=seed, name="capture-pipeline", stream_to=stream_to
    )
    num_producers = num_threads // 2
    num_consumers = num_threads - num_producers
    per_producer = scaled(items_per_producer, scale, minimum=4)
    total_items = num_producers * per_producer

    ring = session.array(queue_capacity, name="ring")
    state = session.struct(
        ("head", "tail", "fill", "produced", "consumed"), name="qstate"
    )
    sink = session.array(num_consumers, name="sink")
    qlock = session.lock()
    not_full = session.condition(qlock)
    not_empty = session.condition(qlock)

    def produce(tid: int) -> None:
        rng = make_rng(session.seed, "capture", "pipeline", "items", tid)
        for _ in range(per_producer):
            item = int(rng.integers(1, 100))
            session.compute(8)
            with qlock:
                while state.fill == queue_capacity:
                    not_full.wait()
                tail = state.tail
                ring[tail] = item
                state.tail = (tail + 1) % queue_capacity
                state.fill += 1
                state.produced += 1
                not_empty.notify()

    def consume(tid: int) -> None:
        slot = tid - num_producers
        acc = 0
        while True:
            with qlock:
                while state.fill == 0:
                    if state.consumed + state.fill >= total_items:
                        # drained and production finished: wake peers
                        # stuck in the same predicate loop and leave
                        not_empty.notify_all()
                        sink[slot] = acc
                        return
                    not_empty.wait()
                head = state.head
                item = ring[head]
                state.head = (head + 1) % queue_capacity
                state.fill -= 1
                state.consumed += 1
                not_full.notify()
            session.compute(16)
            acc += item

    def worker(tid: int) -> None:
        if tid < num_producers:
            produce(tid)
        else:
            consume(tid)

    return session.run(worker)


def capture_workqueue(
    num_threads: int = 4,
    seed: int = 1,
    scale: float = 1.0,
    *,
    tasks_per_thread: int = 120,
    deque_capacity: int | None = None,
    stream_to=None,
) -> Program:
    """Work-stealing task runner with per-thread deques.

    Every thread owns a lock-protected deque seeded with an *uneven*
    share of the tasks; owners pop from the bottom, thieves steal from
    the top of a seeded victim when their own deque runs dry.  Which
    thread executes which task depends entirely on the schedule — the
    workload that motivates deterministic capture.
    """
    session = CaptureSession(
        num_threads, seed=seed, name="capture-workqueue", stream_to=stream_to
    )
    total_tasks = num_threads * scaled(tasks_per_thread, scale, minimum=4)
    if deque_capacity is None:
        deque_capacity = total_tasks  # any initial share fits
    rng = make_rng(seed, "capture", "workqueue", "tasks")

    # uneven initial distribution: thread 0 gets the lion's share
    weights = rng.integers(1, 1 + 3 * num_threads, size=num_threads)
    shares = (weights * total_tasks // weights.sum()).tolist()
    shares[0] += total_tasks - sum(shares)

    deques = []
    locks = []
    tops = []
    for owner in range(num_threads):
        if shares[owner] > deque_capacity:
            raise CaptureError("deque_capacity too small for the task shares")
        tasks = rng.integers(1, 50, size=deque_capacity).tolist()
        deques.append(session.array(deque_capacity, name=f"deque{owner}", values=tasks))
        locks.append(session.lock())
        # top/bottom indices plus this owner's completed-task count
        tops.append(
            session.struct(("top", "bottom", "done_count"), name=f"ends{owner}")
        )
    remaining = session.struct(("tasks",), name="remaining")
    remaining_lock = session.lock()
    results = session.array(num_threads, name="results")
    finish = session.barrier()

    def setup(tid: int) -> None:
        # publish this thread's initial bottom index (traced writes)
        tops[tid].top = 0
        tops[tid].bottom = shares[tid]

    def try_take(tid: int, victim: int) -> int | None:
        """Pop from own bottom / steal from victim's top; None if empty."""
        with locks[victim]:
            ends = tops[victim]
            top = ends.top
            bottom = ends.bottom
            if top >= bottom:
                return None
            if victim == tid:
                bottom -= 1
                ends.bottom = bottom
                return deques[victim][bottom]
            ends.top = top + 1
            return deques[victim][top]

    def worker(tid: int) -> None:
        steal_rng = make_rng(session.seed, "capture", "workqueue", "steal", tid)
        setup(tid)
        finish.wait()  # everyone's deque is published before stealing starts
        acc = 0
        executed = 0
        while True:
            with remaining_lock:
                if remaining.tasks >= total_tasks:
                    break
            task = try_take(tid, tid)
            if task is None:
                victim = int(steal_rng.integers(0, num_threads))
                task = try_take(tid, victim)
                if task is None:
                    continue
            session.compute(4 * task)
            acc += task
            executed += 1
            with remaining_lock:
                remaining.tasks += 1
        results[tid] = acc
        tops[tid].done_count = executed
        finish.wait()

    program = session.run(worker)
    if stream_to is None:
        executed = sum(tops[tid].peek("done_count") for tid in range(num_threads))
        if executed != total_tasks:
            raise CaptureError(
                f"workqueue executed {executed} tasks, expected {total_tasks}"
            )
    return program


def capture_racy_counter(
    num_threads: int = 4,
    seed: int = 1,
    scale: float = 1.0,
    *,
    increments_per_thread: int = 60,
    stream_to=None,
) -> Program:
    """A deliberately racy shared counter (conflict-detection exercise).

    Threads bump a shared counter *without* taking the lock for most
    increments (a classic lost-update bug), synchronizing only at a
    final barrier.  The captured program carries genuine region
    conflicts, which makes it the capture suite's analogue of the
    synthetic ``racy-*`` workloads: CE/CE+/ARC must flag it and the
    brute-force oracle must agree.
    """
    session = CaptureSession(
        num_threads,
        seed=seed,
        name="capture-racy-counter",
        switch_every=3,  # preempt mid-region so racy updates interleave
        stream_to=stream_to,
    )
    # floor high enough that even tiny presets exhibit the race
    increments = scaled(increments_per_thread, scale, minimum=16)
    counter = session.struct(("value", "locked_value"), name="counter")
    lock = session.lock()
    done = session.barrier()

    def worker(tid: int) -> None:
        for i in range(increments):
            session.compute(3)
            if i % 4 == 0:
                with lock:
                    counter.locked_value += 1
            else:
                counter.value += 1  # unsynchronized read-modify-write
        done.wait()

    return session.run(worker)


#: name -> capture function, in registration order
CAPTURE_WORKLOADS = {
    "capture-histogram": capture_histogram,
    "capture-blackscholes": capture_blackscholes,
    "capture-pipeline": capture_pipeline,
    "capture-workqueue": capture_workqueue,
    "capture-racy-counter": capture_racy_counter,
}
