"""``repro-fsck`` against the committed corrupted golden fixtures.

The fixtures under tests/fixtures/fsck/cachedir plant one instance of
every repairable defect class (torn journal tail, corrupt cache entry,
stale tmp residue, truncated trace).  These tests pin the recovery
contract: ``--check`` finds them all and modifies nothing, ``--repair``
fixes them all, and a repaired tree is clean.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.common import durable
from repro.tools.fsck import EXIT_FINDINGS, fsck_paths, main
from repro.trace.binio import load_program_bin

FIXTURES = Path(__file__).parent / "fixtures" / "fsck" / "cachedir"

#: every defect class the committed tree plants, exactly once
EXPECTED_KINDS = {"torn-journal", "torn-trace", "corrupt-entry", "stale-tmp"}


def tree_bytes(root: Path) -> dict[str, bytes]:
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*")) if p.is_file()
    }


@pytest.fixture
def cachedir(tmp_path):
    dest = tmp_path / "cachedir"
    shutil.copytree(FIXTURES, dest)
    return dest


class TestCommittedFixtures:
    def test_check_finds_every_defect_and_exits_4(self, cachedir, capsys):
        assert main([str(cachedir), "--tmp-age", "0"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        for kind in EXPECTED_KINDS:
            assert f"[{kind}]" in out

    def test_check_is_side_effect_free(self, cachedir):
        before = tree_bytes(cachedir)
        main([str(cachedir), "--tmp-age", "0"])
        assert tree_bytes(cachedir) == before

    def test_repair_fixes_everything(self, cachedir):
        assert main([str(cachedir), "--repair", "--tmp-age", "0"]) == 0
        # a second pass over the repaired tree is clean
        report = fsck_paths([cachedir], repair=False, tmp_age=0)
        assert report.findings == []
        # and the repaired artifacts actually load
        scanned = durable.scan_frames(
            (cachedir / "checkpoint.rjl").read_bytes()
        )
        assert scanned.torn_bytes == 0
        assert len(list(scanned.payloads)) == 2
        program = load_program_bin(cachedir / "torn.rtb")
        assert program.num_threads == 2
        assert not list(cachedir.rglob("*.pkl"))  # deleted, recomputable
        assert not list(cachedir.rglob(".tmp-*"))

    def test_json_report(self, cachedir, capsys):
        assert main(
            [str(cachedir), "--tmp-age", "0", "--format", "json"]
        ) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert {f["kind"] for f in payload["findings"]} == EXPECTED_KINDS
        assert payload["clean"] is False
        assert payload["repaired"] == 0

    def test_regenerator_reproduces_the_defect_classes(self, tmp_path,
                                                       monkeypatch):
        """regen.py run fresh plants exactly the committed defects —
        the committed tree can always be rebuilt."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "fsck_regen", FIXTURES.parent / "regen.py"
        )
        regen = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(regen)
        monkeypatch.setattr(regen, "FIXTURE_ROOT", tmp_path / "cachedir")
        regen.main()
        report = fsck_paths([tmp_path / "cachedir"], repair=False, tmp_age=0)
        assert {f.kind for f in report.findings} == EXPECTED_KINDS
        assert all(f.repairable for f in report.findings)


class TestCliEdges:
    def test_missing_path_errors(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path / "nope")])
        assert exc.value.code == 2

    def test_unknown_file_type_rejected(self, tmp_path):
        stray = tmp_path / "notes.txt"
        stray.write_text("hi")
        with pytest.raises(SystemExit):
            main([str(stray)])

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        journal = durable.FramedJournal(tmp_path / "ck.rjl")
        journal.append(b"fine")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_unrepairable_header_damage_still_exits_4(self, cachedir):
        (cachedir / "torn.rtb").write_bytes(b"NOPE not a trace at all")
        rc = main([str(cachedir), "--repair", "--tmp-age", "0"])
        assert rc == EXIT_FINDINGS  # torn-trace finding stays unrepaired
