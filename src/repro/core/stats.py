"""Run statistics.

One :class:`Stats` object is threaded through a simulation; protocols
increment its counters and append to its conflict log.  Energy and every
figure in the harness are pure functions of these counters plus the
network's and DRAM's own accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import ConflictRecord


@dataclass
class Stats:
    """Counters for one simulation run."""

    # private-hierarchy behaviour (l2_hits stays 0 without a private L2;
    # l1_misses counts misses of the whole private hierarchy)
    l1_hits: int = 0
    l2_hits: int = 0
    l1_misses: int = 0
    l1_evictions: int = 0
    l1_writebacks: int = 0

    # LLC / directory behaviour
    llc_hits: int = 0
    llc_misses: int = 0
    llc_evictions: int = 0
    dir_lookups: int = 0

    # MESI-family coherence actions
    invalidations_sent: int = 0
    forwards: int = 0
    upgrades: int = 0
    directory_recalls: int = 0
    # owner->LLC writebacks caused by read-triggered downgrades (zero
    # under MOESI, whose Owned state retains the dirty data)
    downgrade_writebacks: int = 0

    # CE / CE+ metadata machinery
    metadata_spills: int = 0
    metadata_fills: int = 0
    metadata_clears: int = 0
    metadata_checks: int = 0
    aim_hits: int = 0
    aim_misses: int = 0
    aim_evictions: int = 0
    aim_writebacks: int = 0

    # ARC machinery
    self_invalidated_lines: int = 0
    self_downgrades: int = 0
    arc_registrations: int = 0
    arc_clear_messages: int = 0
    arc_write_throughs: int = 0
    classification_recoveries: int = 0

    # program structure
    region_boundaries: int = 0
    accesses: int = 0
    writes: int = 0

    # outcome
    cycles: int = 0
    conflicts: list[ConflictRecord] = field(default_factory=list)

    # -- derived -------------------------------------------------------------

    @property
    def l1_accesses(self) -> int:
        """Every access looks up the L1 (hits at any level or misses)."""
        return self.l1_hits + self.l2_hits + self.l1_misses

    @property
    def l2_accesses(self) -> int:
        """The L2 is consulted whenever the L1 misses."""
        return self.l2_hits + self.l1_misses

    @property
    def llc_accesses(self) -> int:
        """Bank activity: data lookups plus directory lookups."""
        return self.llc_hits + self.llc_misses + self.dir_lookups

    @property
    def aim_accesses(self) -> int:
        return self.aim_hits + self.aim_misses + self.aim_writebacks

    @property
    def l1_miss_rate(self) -> float:
        """Miss rate of the whole private hierarchy."""
        total = self.l1_accesses
        return self.l1_misses / total if total else 0.0

    @property
    def aim_hit_rate(self) -> float:
        looked_up = self.aim_hits + self.aim_misses
        return self.aim_hits / looked_up if looked_up else 0.0

    @property
    def metadata_ops(self) -> int:
        """Mask reads/updates performed by conflict-detecting protocols."""
        return self.metadata_checks + self.arc_registrations

    def record_conflict(self, record: ConflictRecord) -> bool:
        """Append a conflict if its (line, regions) signature is new.

        Returns True if recorded.  Deduplication mirrors how a delivered
        exception would be raised once per conflicting region pair, not
        once per coherence message.
        """
        signature = (
            record.line_addr,
            record.first_core,
            record.first_region,
            record.second_core,
            record.second_region,
        )
        if not hasattr(self, "_conflict_signatures"):
            self._conflict_signatures: set = set()
        if signature in self._conflict_signatures:
            return False
        self._conflict_signatures.add(signature)
        self.conflicts.append(record)
        return True
