"""Crash-recovery checkpoints for interrupted sweeps.

A :class:`Checkpoint` is an append-only journal the executor updates as
each simulation point settles: one record per point with its key, final
status (``hit``/``miss``/``computed``/``retried``/``timeout``/
``failed``), attempt count and timing.  Appends happen in *completion*
order — the journal is a recovery artifact, not a diffable output, and
the diffable outputs (tables, manifest entries) stay in submission
order regardless.

Records are JSON payloads inside CRC+length frames
(:class:`repro.common.durable.FramedJournal`), so the journal is:

* **torn-tail tolerant** — a crash mid-append leaves at most one
  partial frame, which :meth:`Checkpoint._load` (a salvage scan)
  silently drops; every surviving record is bit-exact or absent, never
  garbled.  The dropped-byte count is surfaced as :attr:`torn_bytes`.
* **multi-process safe** — each append is a single ``write(2)`` on an
  ``O_APPEND`` descriptor under ``flock``, so concurrent executors
  sharing one cache directory interleave at record granularity.

Journals written before the framed format (plain JSONL) still load:
a journal that does not start with the frame magic falls back to
line-oriented parsing with the same skip-torn-tail semantics.

Recovery semantics on ``--resume``:

* Points that *completed* are already served by the content-addressed
  result cache — the journal just lets the harness report how much of
  the interrupted run survives.
* Points that *failed terminally* (timeout, crash or error after the
  full retry budget) are replayed from the journal when ``keep_going``
  is set, so a resumed sweep does not pay the timeout/retry budget for
  a known-bad point all over again.  Without ``keep_going`` they are
  re-attempted — a resume is an explicit request to try again.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..common import durable

#: filename of the framed checkpoint journal inside a cache directory
CHECKPOINT_NAME = "checkpoint.rjl"

#: group-commit window for journal appends: records inside the window
#: share one fdatasync; a crash forfeits at most the window's worth of
#: (recomputable) records, never journal consistency.  The executor
#: flushes the window at sweep end.
CHECKPOINT_SYNC_INTERVAL_S = 0.05

#: statuses that mean "this point produced a result"
COMPLETED_STATUSES = frozenset({"hit", "miss", "computed", "retried"})

#: statuses that mean "this point terminally failed"
FAILED_STATUSES = frozenset({"timeout", "failed"})


class Checkpoint:
    """Append-only per-point progress journal for one sweep."""

    def __init__(self, path: str | Path, *, resume: bool = False):
        self.path = Path(path)
        self.journal = durable.FramedJournal(
            self.path, site="checkpoint",
            sync_interval_s=CHECKPOINT_SYNC_INTERVAL_S,
        )
        self.entries: dict[str, dict] = {}
        self.resumed_from = 0
        #: bytes of torn tail dropped while loading (0 on a clean journal)
        self.torn_bytes = 0
        self._legacy = False
        if resume:
            self.entries = self._load(self.path)
            self.resumed_from = len(self.entries)
            if self._legacy:
                # migrate a pre-framed JSONL journal: rewrite the loaded
                # records as frames, else appended frames would land
                # after (and be garbled by) line-oriented text
                self.journal.reset()
                for record in self.entries.values():
                    self.journal.append(
                        json.dumps(record, sort_keys=True).encode("utf-8")
                    )
            elif self.torn_bytes:
                # truncate the torn tail *before* appending: frames
                # written after garbage would be unreachable to a scan
                self.journal.repair()
        else:
            # a fresh run owns the journal: start it empty
            self.journal.reset()

    def _load(self, path: Path) -> dict[str, dict]:
        try:
            blob = path.read_bytes()
        except OSError:
            return {}
        if blob.startswith(durable.FRAME_MAGIC) or not blob:
            scanned = durable.scan_frames(blob)
            self.torn_bytes = scanned.torn_bytes
            lines: list[bytes] = list(scanned.payloads)
        else:
            # legacy JSONL journal from a pre-framed harness version
            self._legacy = True
            lines = blob.splitlines()
        entries: dict[str, dict] = {}
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                record["status"]
            except (ValueError, KeyError, TypeError):
                continue  # truncated tail from an interrupted append
            entries[key] = record
        return entries

    # -- recording -------------------------------------------------------

    def record(
        self,
        key: str,
        status: str,
        workload: str,
        protocol: str,
        seconds: float,
        attempts: int = 1,
        error: str | None = None,
    ) -> None:
        record = {
            "key": key,
            "status": status,
            "workload": workload,
            "protocol": protocol,
            "seconds": round(seconds, 6),
            "attempts": attempts,
        }
        if error is not None:
            record["error"] = error
        self.entries[key] = record
        self.journal.append(json.dumps(record, sort_keys=True).encode("utf-8"))

    def sync(self) -> None:
        """Flush the group-commit window (the executor's sweep-end hook)."""
        self.journal.sync()

    # -- queries ---------------------------------------------------------

    def status(self, key: str) -> str | None:
        record = self.entries.get(key)
        return None if record is None else record.get("status")

    def completed(self, key: str) -> bool:
        return self.status(key) in COMPLETED_STATUSES

    def failed(self, key: str) -> dict | None:
        """The journal record of a terminally failed point, or None."""
        record = self.entries.get(key)
        if record is not None and record.get("status") in FAILED_STATUSES:
            return record
        return None

    def summary(self) -> dict:
        statuses = [r.get("status") for r in self.entries.values()]
        return {
            "path": str(self.path),
            "points": len(self.entries),
            "completed": sum(s in COMPLETED_STATUSES for s in statuses),
            "failed": sum(s in FAILED_STATUSES for s in statuses),
            "resumed_from": self.resumed_from,
        }
