"""Bench: regenerate the off-chip memory traffic figure.

Expected shape (paper): CE's off-chip bytes exceed everyone's (metadata
spills/fills/clears go to DRAM); CE+'s AIM absorbs them; ARC keeps all
access information on chip, so its off-chip traffic is MESI-like.
"""


def test_fig_offchip_traffic(run_exp):
    totals, metadata = run_exp("fig_offchip_traffic")
    geomean = totals.row_dict("workload")["geomean"]
    assert geomean["ce"] >= geomean["ce+"] - 1e-9
    assert geomean["ce"] >= geomean["arc"] - 1e-9
    # ARC moves zero metadata off-chip on every workload.
    assert all(v == 0 for v in metadata.column("arc"))
    # CE moves at least as much metadata off-chip as CE+ everywhere.
    assert all(
        ce >= cp for ce, cp in zip(metadata.column("ce"), metadata.column("ce+"))
    )
