"""Bench: regenerate the AIM-size sensitivity figure.

Expected shape (paper): plain CE moves the most metadata off-chip;
growing the AIM monotonically reduces off-chip metadata bytes (and,
once the metadata working set fits, runtime approaches CE+'s floor).
"""


def test_fig_aim_sensitivity(run_exp):
    (table,) = run_exp("fig_aim_sensitivity")
    sizes = table.column("aim size")
    assert sizes[0] == "CE (no AIM)"
    meta = table.column("offchip metadata bytes")
    runtime = table.column("runtime vs MESI")
    # CE is the ceiling on off-chip metadata.
    assert meta[0] == max(meta)
    # Larger AIMs never move more metadata off-chip.
    assert all(a >= b for a, b in zip(meta[1:], meta[2:]))
    # Runtime never degrades when the AIM grows (small jitter allowed).
    assert all(a >= b - 0.05 for a, b in zip(runtime[1:], runtime[2:]))
