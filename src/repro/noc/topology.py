"""2D-mesh topology with XY (dimension-ordered) routing.

Tiles are numbered row-major; tile *i* hosts core *i*, LLC bank *i*, and
(for CE+) AIM slice *i*.  Links are directed; routes between every tile
pair are precomputed at construction (at most 64x64 pairs), so the
network's send path is a tuple lookup.
"""

from __future__ import annotations

from ..common.errors import ConfigError


class MeshTopology:
    """A ``width x height`` mesh of tiles with XY routing."""

    def __init__(self, width: int, height: int):
        if width <= 0 or height <= 0:
            raise ConfigError("mesh dimensions must be positive")
        self.width = width
        self.height = height
        self.num_tiles = width * height

        # Enumerate directed links: (src_tile, dst_tile) for mesh neighbours.
        self._link_ids: dict[tuple[int, int], int] = {}
        links: list[tuple[int, int]] = []
        for tile in range(self.num_tiles):
            x, y = tile % width, tile // width
            for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                if 0 <= nx < width and 0 <= ny < height:
                    neighbour = ny * width + nx
                    self._link_ids[(tile, neighbour)] = len(links)
                    links.append((tile, neighbour))
        self.links: tuple[tuple[int, int], ...] = tuple(links)

        # Precompute XY routes as tuples of link indices.
        self._routes: list[tuple[int, ...]] = []
        for src in range(self.num_tiles):
            for dst in range(self.num_tiles):
                self._routes.append(self._compute_route(src, dst))

    @property
    def num_links(self) -> int:
        return len(self.links)

    def coords(self, tile: int) -> tuple[int, int]:
        """(x, y) position of a tile."""
        if not 0 <= tile < self.num_tiles:
            raise ConfigError(f"tile {tile} out of range (0..{self.num_tiles - 1})")
        return tile % self.width, tile // self.width

    def _compute_route(self, src: int, dst: int) -> tuple[int, ...]:
        """XY route: travel along X to the destination column, then along Y."""
        route: list[int] = []
        x, y = src % self.width, src // self.width
        dx, dy = dst % self.width, dst // self.width
        while x != dx:
            nx = x + (1 if dx > x else -1)
            route.append(self._link_ids[(y * self.width + x, y * self.width + nx)])
            x = nx
        while y != dy:
            ny = y + (1 if dy > y else -1)
            route.append(self._link_ids[(y * self.width + x, ny * self.width + x)])
            y = ny
        return tuple(route)

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Link indices of the XY route from ``src`` to ``dst`` (empty if equal)."""
        return self._routes[src * self.num_tiles + dst]

    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop count between tiles."""
        return len(self._routes[src * self.num_tiles + dst])
