"""Deterministic cooperative scheduling of captured threads.

Capturing a real ``threading`` program under the OS scheduler would
yield a different interleaving — and therefore different trace contents
for any schedule-dependent program (work stealing, pipelines) — on
every run.  The capture layer instead serializes the program: exactly
one thread runs at a time, and control passes only at *switch points*
(synchronization operations, and optionally every N shared accesses).
Given a fixed start permutation, the interleaving is a pure function of
the program and the seed, which makes repeated captures byte-identical.

Threads are real ``threading.Thread`` objects blocked on a shared
condition variable; the scheduler hands a baton around in round-robin
rotation over the seeded start order.  Blocking operations (contended
lock, barrier, condition wait) park the thread until a peer marks it
ready; if no thread is ready and some are still parked, the captured
program has deadlocked and the capture aborts with a
:class:`~repro.common.errors.CaptureError`.
"""

from __future__ import annotations

import threading

from ..common.errors import CaptureError

_READY = 0
_BLOCKED = 1
_DONE = 2

_STATE_NAMES = {_READY: "ready", _BLOCKED: "blocked", _DONE: "done"}


class CooperativeScheduler:
    """Round-robin baton scheduler over a fixed thread rotation.

    ``order`` is the rotation (a permutation of ``range(num_threads)``,
    seeded by the session); ``order[0]`` runs first.
    """

    def __init__(self, order: list[int]):
        if sorted(order) != list(range(len(order))):
            raise CaptureError(f"order must be a permutation, got {order}")
        self._order = list(order)
        self._slot = {tid: i for i, tid in enumerate(order)}
        n = len(order)
        self._state = [_READY] * n
        self._cond = threading.Condition()
        self._current: int | None = None
        self._num_done = 0
        self._failure: BaseException | None = None
        self._started = False

    # -- lifecycle (main thread) -------------------------------------------

    def run(self, thread_factory) -> None:
        """Start all threads and block until every one finishes.

        ``thread_factory(tid)`` must return an *unstarted*
        ``threading.Thread`` whose target calls :meth:`thread_begin` /
        :meth:`thread_end` around the worker body.  Re-raises the first
        worker exception after all threads have unwound.
        """
        threads = [thread_factory(tid) for tid in range(len(self._order))]
        for tid in self._order:
            threads[tid].start()
        with self._cond:
            self._started = True
            self._current = self._order[0]
            self._cond.notify_all()
        for tid in self._order:
            threads[tid].join()
        if self._failure is not None:
            raise self._failure

    # -- worker-side protocol ----------------------------------------------

    def thread_begin(self, tid: int) -> None:
        """Block until this thread is handed the baton for the first time."""
        with self._cond:
            self._cond.wait_for(
                lambda: (self._started and self._current == tid)
                or self._failure is not None
            )
            if self._failure is not None:
                raise CaptureError("capture aborted by a peer thread's failure")

    def thread_end(self, tid: int, error: BaseException | None) -> None:
        """Mark the thread finished and pass the baton on."""
        with self._cond:
            self._state[tid] = _DONE
            self._num_done += 1
            if error is not None and self._failure is None:
                self._failure = error
            if self._failure is not None:
                self._cond.notify_all()
                return
            if self._num_done < len(self._order):
                nxt = self._pick_next(tid)
                if nxt is None:
                    self._fail_deadlock()
                self._current = nxt
            self._cond.notify_all()

    def yield_control(self, tid: int) -> None:
        """Switch point: offer the baton to the next ready thread."""
        with self._cond:
            self._check_alive()
            nxt = self._pick_next(tid)
            if nxt is None or nxt == tid:
                return
            self._current = nxt
            self._cond.notify_all()
            self._wait_for_baton(tid)

    def block(self, tid: int) -> None:
        """Park the calling thread until a peer calls :meth:`make_ready`.

        The caller must already have enqueued itself on whatever wait
        queue will wake it; this only hands the baton away and sleeps.
        """
        with self._cond:
            self._check_alive()
            self._state[tid] = _BLOCKED
            nxt = self._pick_next(tid)
            if nxt is None:
                self._fail_deadlock()
            self._current = nxt
            self._cond.notify_all()
            self._wait_for_baton(tid)

    def make_ready(self, tid: int) -> None:
        """Unpark a thread (called by the baton holder; the woken thread
        runs only when the baton next reaches it)."""
        with self._cond:
            if self._state[tid] == _BLOCKED:
                self._state[tid] = _READY

    # -- internals ---------------------------------------------------------

    def _wait_for_baton(self, tid: int) -> None:
        # caller holds self._cond
        self._cond.wait_for(
            lambda: (self._current == tid and self._state[tid] == _READY)
            or self._failure is not None
        )
        if self._failure is not None:
            raise CaptureError("capture aborted by a peer thread's failure")

    def _pick_next(self, tid: int) -> int | None:
        """Next ready thread in rotation order after ``tid`` (or ``tid``
        itself if it alone is ready); ``None`` if nothing is ready."""
        order = self._order
        n = len(order)
        base = self._slot[tid]
        for step in range(1, n + 1):
            candidate = order[(base + step) % n]
            if self._state[candidate] == _READY:
                return candidate
        return None

    def _check_alive(self) -> None:
        if self._failure is not None:
            raise CaptureError("capture aborted by a peer thread's failure")

    def _fail_deadlock(self) -> None:
        states = {
            tid: _STATE_NAMES[self._state[tid]] for tid in range(len(self._order))
        }
        error = CaptureError(
            f"captured program deadlocked: no runnable thread ({states})"
        )
        self._failure = error
        self._cond.notify_all()
        raise error
