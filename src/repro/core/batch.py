"""Two-tier batch simulation engine.

The scalar engine (:class:`~repro.core.simulator.Simulator`) dispatches
one event at a time through the full protocol model; for most programs
the overwhelming majority of those events are L1 hits on lines no other
core ever observes.  :class:`BatchSimulator` exploits that: a
whole-program classification pass (vectorized over the trace columns, or
chunk-streamed for ``.rtb`` programs) splits cache lines into

``PRIVATE(t)``
    only thread ``t`` ever accesses the line — reads *and* writes are
    fast-path candidates;
``RO_SHARED``
    two or more threads access it but nobody ever writes — reads are
    fast-path candidates;
``CONTENDED``
    everything else — always dispatched through the protocol model.

Per heap pop the engine consumes the maximal run of consecutive
fast-path-eligible L1 hits and applies it in bulk: clock advance from a
prefix-sum, stats counters in one add, access masks OR-folded per line
with ``np.bitwise_or.reduceat``, and the exact scalar LRU order
reproduced by touching distinct lines in ascending last-occurrence
order.  Sync events, misses and contended accesses fall back to the
untouched scalar ``_step`` at identical cycles in identical global heap
order.

Equivalence is byte-exact, not approximate, because a fast-pathed hit
performs *no* interaction with shared machine state: no NoC message, no
DRAM/LLC access, no directory or bank-table read or write.  The run's
effects are confined to the issuing core's own L1 payloads, its LRU
order, and additive stats counters — so every residue event still
observes exactly the state it would have under scalar execution.  The
per-line runtime gates below close the only cross-core visibility
windows:

* the line must be resident in the L1 proper (an L2 hit promotes and
  can cascade-demote — protocol-visible, so it stays scalar);
* MESI-family private lines must be in E/M (a write hit below E takes
  the upgrade path);
* CE/CE+ read-only-shared lines must already be downgraded to S — while
  the first reader still holds E, a remote reader's forward inspects the
  holder's live mask/region state (``_check_remote``), which bulk
  application would perturb mid-run;
* ARC lines must have ``shared`` matching their classification — while
  a read-only-shared line is still classified private, the
  private-to-shared recovery reads the previous owner's live masks, so
  those accesses stay scalar until the transition lands.

``tests/test_engine_equiv.py`` + :mod:`repro.verify.diffengine` enforce
the guarantee across every registered workload and protocol;
docs/ENGINE.md walks through the argument and the debugging workflow.
"""

from __future__ import annotations

import os

import numpy as np

from ..common.errors import ConfigError
from ..protocols.base import E as _E
from ..protocols.base import M as _M
from ..protocols.base import S as _S
from ..trace.events import WRITE
from .simulator import Simulator

#: env var selecting the engine across process boundaries (harness
#: workers are forked and rebuild their own simulators — same pattern
#: as $REPRO_SANITIZE)
ENGINE_ENV = "REPRO_ENGINE"

ENGINES = ("scalar", "batch")

#: the batch engine is the default: the differential suite pins it
#: byte-identical to scalar, so there is no accuracy trade-off
DEFAULT_ENGINE = "batch"

#: classification codes (``codes[i] >= 0`` means private to that thread)
CONTENDED = -1
RO_SHARED = -2

#: eligible islands shorter than this, wedged between ineligible
#: events, are merged into the surrounding scalar stretch — the
#: per-pop fast-path machinery costs more than it saves there
_MIN_ISLAND = 4

#: runs below this length take the single-pass Python path (dict
#: aggregation); above it, fixed NumPy call overhead is amortized and
#: the vectorized path wins
_SMALL_RUN = 64

#: candidate-run cap: bounds the single argsort/reduceat working set of
#: one bulk application.  Block-doubling validation already bounds the
#: cost of a failure near the head, so the cap can be generous — large
#: runs amortize the per-run fixed costs (validation scan, argsort)
#: that dominate in dispatch-bound steady state.
_MAX_RUN = 32768

#: adaptive bail-out sampling period, in heap pops per core: every
#: period, a core whose bulk runs covered fewer than 2 events per pop
#: stops trying the fast path (residue-dominated: cheaper pure-scalar)
_ADAPT_PERIOD = 512


def resolve_engine(engine: str | None = None) -> str:
    """Resolve the engine choice: explicit argument, then ``$REPRO_ENGINE``,
    then the default."""
    value = engine if engine is not None else os.environ.get(ENGINE_ENV)
    if value is None or not value.strip():
        return DEFAULT_ENGINE
    value = value.strip().lower()
    if value not in ENGINES:
        raise ConfigError(
            f"unknown engine {value!r}: expected one of {', '.join(ENGINES)}"
        )
    return value


def make_simulator(
    cfg,
    program,
    recorder=None,
    *,
    sanitize: bool | None = None,
    engine: str | None = None,
    static_hint=None,
):
    """Build the selected engine's simulator for ``program`` on ``cfg``.

    This is the one construction point the library and harness share;
    both engines produce byte-identical results, so cache keys and
    golden outputs are engine-independent.
    """
    if resolve_engine(engine) == "batch":
        return BatchSimulator(
            cfg, program, recorder, sanitize=sanitize, static_hint=static_hint
        )
    return Simulator(cfg, program, recorder, sanitize=sanitize)


# --------------------------------------------------------------------------
# whole-program line classification
# --------------------------------------------------------------------------


class LineClassification:
    """Sorted line-address table mapping each line to its sharing class.

    ``lines`` is a sorted ``uint64`` array of every line the program
    accesses; ``codes[i]`` is the owning thread id for private lines,
    :data:`RO_SHARED` or :data:`CONTENDED`.
    """

    __slots__ = ("lines", "codes")

    def __init__(self, lines: np.ndarray, codes: np.ndarray):
        self.lines = lines
        self.codes = codes

    def code_of(self, line: int) -> int:
        """Class code of one line (:data:`CONTENDED` if never accessed)."""
        pos = int(np.searchsorted(self.lines, np.uint64(line)))
        if pos < len(self.lines) and int(self.lines[pos]) == line:
            return int(self.codes[pos])
        return CONTENDED

    def codes_for(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`code_of` over a line-address array."""
        if len(self.lines) == 0:
            return np.full(len(lines), CONTENDED, dtype=np.int64)
        pos = np.searchsorted(self.lines, lines)
        pos = np.minimum(pos, len(self.lines) - 1)
        found = self.lines[pos] == lines
        return np.where(found, self.codes[pos], np.int64(CONTENDED))

    def counts(self) -> dict[str, int]:
        """Class population sizes (diagnostics and tests)."""
        return {
            "private": int(np.count_nonzero(self.codes >= 0)),
            "ro_shared": int(np.count_nonzero(self.codes == RO_SHARED)),
            "contended": int(np.count_nonzero(self.codes == CONTENDED)),
        }


def classify_program(
    program,
    line_size: int,
    *,
    static_hint: LineClassification | None = None,
    validate_hint: bool = True,
) -> LineClassification:
    """Classify every line ``program`` touches by its sharing pattern.

    Streams each trace chunk-by-chunk (``ThreadTrace.iter_chunks`` is a
    single chunk for materialized traces, the decoded ``.rtb`` chunks
    for streamed ones), keeping only per-thread *unique line* sets in
    memory — O(working set), never O(events).

    ``static_hint`` substitutes a precomputed classification from the
    static analyzer (:meth:`repro.statics.StaticReport.line_hint`).
    Because static classes over-approximate — a statically PRIVATE line
    is dynamically private-or-untouched, never shared — the hint is safe
    to drive the fast path, merely pessimistic.  With ``validate_hint``
    (the default) the exact classification is still computed and the
    hint checked against the engine-safety contract, raising
    :class:`~repro.common.errors.StaticSoundnessError` on any line the
    hint places *below* the exact class; ``validate_hint=False`` skips
    the streaming pass entirely and trusts the hint.
    """
    if static_hint is not None and not validate_hint:
        return static_hint
    exact, written = _classify_exact(program, line_size)
    if static_hint is not None:
        validate_static_hint(exact, written, static_hint)
        return static_hint
    return exact


def validate_static_hint(
    exact: LineClassification,
    written: np.ndarray,
    hint: LineClassification,
) -> None:
    """Enforce the hint's conservative-superset contract per exact line.

    Safe substitutions (hint may move classes *up* the sharing lattice):
    exact CONTENDED requires hint CONTENDED; exact RO_SHARED allows
    RO_SHARED or CONTENDED; exact PRIVATE(t) allows PRIVATE(t),
    CONTENDED, or — only for lines the program never writes —
    RO_SHARED.  Anything else would let the fast path treat a line more
    optimistically than the trace warrants, so it raises.
    """
    from ..common.errors import StaticSoundnessError

    if len(exact.lines) == 0:
        return
    hint_codes = hint.codes_for(exact.lines)
    ever_written = (
        np.isin(exact.lines, written)
        if len(written)
        else np.zeros(len(exact.lines), dtype=bool)
    )
    ok = hint_codes == np.int64(CONTENDED)
    ok |= (exact.codes == np.int64(RO_SHARED)) & (
        hint_codes == np.int64(RO_SHARED)
    )
    ok |= (exact.codes >= 0) & (hint_codes == exact.codes)
    ok |= (
        (exact.codes >= 0)
        & (hint_codes == np.int64(RO_SHARED))
        & ~ever_written
    )
    bad = np.flatnonzero(~ok)
    if len(bad):
        i = int(bad[0])
        raise StaticSoundnessError(
            f"static hint understates sharing on {len(bad)} line(s): "
            f"e.g. line {int(exact.lines[i]):#x} is exactly "
            f"{int(exact.codes[i])} but hinted {int(hint_codes[i])} "
            f"(codes >= 0 private, {RO_SHARED} ro-shared, "
            f"{CONTENDED} contended)"
        )


def _classify_exact(
    program, line_size: int
) -> tuple[LineClassification, np.ndarray]:
    """The streaming exact pass; also returns the ever-written line set
    (needed by hint validation, which must not bless an RO_SHARED hint
    over a privately *written* line)."""
    shift = np.uint64(line_size.bit_length() - 1)
    per_thread: list[np.ndarray] = []
    written_parts: list[np.ndarray] = []
    for trace in program.traces:
        touched = np.empty(0, dtype=np.uint64)
        written = np.empty(0, dtype=np.uint64)
        for events in trace.iter_chunks():
            kinds = events["kind"]
            access = kinds <= WRITE
            lines = (events["addr"][access] >> shift) << shift
            touched = np.union1d(touched, lines)
            wlines = (events["addr"][kinds == WRITE] >> shift) << shift
            if len(wlines):
                written = np.union1d(written, wlines)
        per_thread.append(touched.astype(np.uint64))
        if len(written):
            written_parts.append(written.astype(np.uint64))

    all_written = (
        np.unique(np.concatenate(written_parts))
        if written_parts
        else np.empty(0, dtype=np.uint64)
    )
    if not any(len(t) for t in per_thread):
        return (
            LineClassification(
                np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
            ),
            all_written,
        )

    cat = np.concatenate(per_thread)
    tids = np.concatenate(
        [
            np.full(len(t), tid, dtype=np.int64)
            for tid, t in enumerate(per_thread)
        ]
    )
    order = np.argsort(cat, kind="stable")
    sorted_lines = cat[order]
    sorted_tids = tids[order]
    # group boundaries: per-thread arrays are unique, so a group's size
    # is the number of distinct threads touching that line
    new_group = np.empty(len(sorted_lines), dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_lines[1:], sorted_lines[:-1], out=new_group[1:])
    starts = np.flatnonzero(new_group)
    counts = np.diff(np.append(starts, len(sorted_lines)))
    uniq = sorted_lines[starts]
    ever_written = (
        np.isin(uniq, all_written)
        if len(all_written)
        else np.zeros(len(uniq), dtype=bool)
    )
    codes = np.where(
        counts == 1,
        sorted_tids[starts],
        np.where(ever_written, np.int64(CONTENDED), np.int64(RO_SHARED)),
    ).astype(np.int64)
    return LineClassification(uniq, codes), all_written


# --------------------------------------------------------------------------
# the batch engine
# --------------------------------------------------------------------------


class _Window:
    """One decoded chunk of a core's trace, with fast-path precomputes."""

    __slots__ = (
        "start",
        "end",
        "addrs",
        "sizes",
        "iswrite",
        "lines",
        "masks",
        "codes",
        "gapnm",
        "cum",
        "bad",
        "bad_stretch_end",
        "prev_occ",
    )


class BatchSimulator(Simulator):
    """Drop-in :class:`Simulator` with the vectorized fast path.

    ``force_residue_lines`` demotes the given line base addresses to the
    residue tier regardless of classification — the divergence-debugging
    knob (see docs/ENGINE.md): demoting any fast-path line must be
    behavior-preserving, so bisecting over this set localizes a faulty
    bulk update to one line.

    The fast path disables itself (falling back to pure scalar stepping)
    when a recorder is attached (the oracle needs every access in
    per-event order) or when the bounded sparse directory is configured
    (directory recalls can invalidate private/read-only lines from
    another core's transaction mid-run).
    """

    def __init__(
        self,
        cfg,
        program,
        recorder=None,
        *,
        sanitize: bool | None = None,
        force_residue_lines=(),
        static_hint: LineClassification | None = None,
    ):
        super().__init__(cfg, program, recorder, sanitize=sanitize)
        self._fast = (
            recorder is None and cfg.directory_entries_per_bank is None
        )
        n = program.num_threads
        self._windows: list[_Window | None] = [None] * n
        self._chunk_iters: list = [None] * n
        self._scalar_until = [0] * n
        self._bad_ptr = [0] * n
        self._pops = [0] * n
        self._adapt_cov = [0] * n
        self._bailed = 0
        self._forced = np.unique(
            np.asarray(sorted(int(a) for a in force_residue_lines), dtype=np.uint64)
        )
        protocol = self.protocol
        self._is_mesi_family = hasattr(protocol, "directory")
        self._is_ce_family = hasattr(protocol, "meta_table")
        self._is_arc = hasattr(protocol, "owner_table")
        self._line_shift = np.uint64(cfg.line_size.bit_length() - 1)
        self._hit_cost = cfg.nonmem_cycles_per_event + cfg.l1.hit_latency
        self._sanitize_checks: list | None = None
        self.classification = (
            classify_program(program, cfg.line_size, static_hint=static_hint)
            if self._fast
            else None
        )
        if not self._fast:
            # run() resolves ``self._step`` per pop, so shadowing the
            # override with the scalar bound method removes even the
            # shim's dispatch overhead when the fast path is off
            self._step = Simulator._step.__get__(self)

    # -- window management -------------------------------------------------

    def _chunk_stream(self, core: int):
        start = 0
        for events in self.program.traces[core].iter_chunks():
            yield start, events
            start += len(events)

    def _advance_window(self, core: int, idx: int) -> _Window:
        it = self._chunk_iters[core]
        if it is None:
            it = self._chunk_iters[core] = self._chunk_stream(core)
        while True:
            start, events = next(it)
            if idx < start + len(events):
                break
        win = _Window()
        win.start = start
        win.end = start + len(events)
        kinds = events["kind"]
        addrs = events["addr"]
        sizes = events["size"]
        win.addrs = addrs
        win.sizes = sizes
        win.iswrite = kinds == WRITE
        win.lines = (addrs >> self._line_shift) << self._line_shift
        offsets = addrs - win.lines
        win.masks = (
            (np.uint64(1) << sizes.astype(np.uint64)) - np.uint64(1)
        ) << offsets
        win.codes = self.classification.codes_for(win.lines)
        win.gapnm = events["gap"].astype(np.int64) + self.cfg.nonmem_cycles_per_event
        # prefix sum of the full fast-path cost per event: gap + non-mem
        # cycles + the L1 hit latency the access would charge
        win.cum = np.cumsum(win.gapnm + self.cfg.l1.hit_latency)
        is_access = kinds <= WRITE
        core_t = np.int64(core)
        eligible = is_access & (
            (win.codes == core_t) | (~win.iswrite & (win.codes == RO_SHARED))
        )
        if len(self._forced):
            eligible &= ~np.isin(win.lines, self._forced)
        bad0 = np.flatnonzero(~eligible)
        if len(bad0) > 1:
            # merge eligible islands shorter than _MIN_ISLAND into the
            # surrounding ineligible stretch (interval-cover via a
            # difference array): tiny islands between contended events
            # aren't worth the per-pop fast-path setup
            d = np.diff(bad0)
            short = np.flatnonzero((d > 1) & (d <= _MIN_ISLAND))
            if len(short):
                delta = np.zeros(len(eligible) + 1, dtype=np.int32)
                np.add.at(delta, bad0[short] + 1, 1)
                np.add.at(delta, bad0[short] + d[short], -1)
                eligible &= ~(np.cumsum(delta[:-1]) > 0)
        bad = np.flatnonzero(~eligible)
        # bad_stretch_end[j] = first eligible position after the run of
        # consecutive ineligible positions containing bad[j]: lets _step
        # hand a whole contended/sync stretch to the scalar tier with one
        # integer compare per event.  Kept as plain lists — _step walks
        # them with a monotone per-core pointer, no per-pop bisect.
        if len(bad):
            ends = np.append(np.flatnonzero(np.diff(bad) != 1), len(bad) - 1)
            starts = np.append(0, ends[:-1] + 1)
            win.bad_stretch_end = np.repeat(bad[ends] + 1, ends - starts + 1).tolist()
        else:
            win.bad_stretch_end = []
        win.bad = bad.tolist()
        # prev_occ[p] = window position of the previous event on the same
        # line (-1 if p is the line's first appearance): one stable sort
        # here lets run validation find a run's distinct lines without
        # re-sorting the candidate on every heap pop
        order = np.argsort(win.lines, kind="stable")
        sl = win.lines[order]
        prev = np.full(len(sl), -1, dtype=np.int64)
        if len(sl) > 1:
            same = sl[1:] == sl[:-1]
            prev[order[1:][same]] = order[:-1][same]
        win.prev_occ = prev
        self._windows[core] = win
        return win

    # -- the event loop ----------------------------------------------------

    def _step(self, core: int, clock: int) -> None:
        if not self._fast:
            super()._step(core, clock)
            return
        idx = self.indices[core]
        if idx >= self._lengths[core]:
            self._finish(core, clock)
            return
        # adaptive bail-out: on a core where pops overwhelmingly take
        # the scalar tier (contended stretches, runtime misses,
        # state-gate rejections), the fast-path machinery — including
        # this shim — is pure overhead.  Per sampling period of heap
        # pops, measure how many events bulk application actually
        # covered; below ~2 per pop, hand the core to the scalar tier
        # for good, and once every core has bailed shed the shim itself.
        pops = self._pops[core] + 1
        self._pops[core] = pops
        if not pops & (_ADAPT_PERIOD - 1) and pops != _ADAPT_PERIOD:
            # cumulative ratio, not a per-period window — one contended
            # phase must not permanently demote a core whose long-run
            # coverage is healthy — and never at the first sample, which
            # the cold-miss warmup drags below break-even on dispatch-
            # bound workloads too
            if self._adapt_cov[core] < pops * 2:
                self._scalar_until[core] = self._lengths[core]
                self._bailed += 1
                if self._bailed >= self.program.num_threads - self._num_finished:
                    # run() resolves self._step per pop, so shadowing
                    # the override drops even the shim dispatch cost
                    self._step = Simulator._step.__get__(self)
                super()._step(core, clock)
                return
        if idx < self._scalar_until[core]:
            # inside a known-ineligible stretch: pure scalar, no numpy
            super()._step(core, clock)
            return
        self._attempt(core, clock, idx)
        self._adapt_cov[core] += self.indices[core] - idx

    def _attempt(self, core: int, clock: int, idx: int) -> None:
        win = self._windows[core]
        if win is None or idx >= win.end:
            win = self._advance_window(core, idx)
            self._bad_ptr[core] = 0
        r = idx - win.start
        # advance the per-core cursor into the (sorted) ineligible
        # positions; r is monotone within a window, so this walk is
        # amortized O(len(bad)) per window, not a bisect per pop
        bad = win.bad
        nbad = len(bad)
        j = self._bad_ptr[core]
        while j < nbad and bad[j] < r:
            j += 1
        self._bad_ptr[core] = j
        if j < nbad and bad[j] == r:
            # the event at r itself is ineligible; delegate its whole
            # contiguous ineligible stretch to the scalar tier
            self._scalar_until[core] = win.start + win.bad_stretch_end[j]
            super()._step(core, clock)
            return
        # cheap pre-check of the head event's line before any run setup:
        # after a miss-heavy stretch this is the common exit, and it
        # costs one dict probe instead of a slice conversion
        payload = self.protocol.l1[core].l1.get(int(win.lines[r]), touch=False)
        if payload is None or not self._payload_ok(
            payload, int(win.codes[r]), core
        ):
            super()._step(core, clock)
            return
        stop = bad[j] if j < nbad else win.end - win.start
        n = min(stop - r, _MAX_RUN)
        if n >= _SMALL_RUN:
            n = self._validated_length(core, win, r, n)
        if 0 < n < _SMALL_RUN:
            if self._run_small(core, win, r, n, clock):
                return
            n = 0
        if n <= 0:
            super()._step(core, clock)
            return
        self._apply_run(core, win, r, n, clock)

    def _validated_length(self, core: int, win: _Window, r: int, n: int) -> int:
        """Largest eligible prefix whose lines pass the residency/state
        gates; a failing line truncates the run at its first occurrence
        (that occurrence then executes scalar — typically a miss).

        Lines are checked in first-occurrence order with early exit:
        every event before the first failure touches only lines that
        already passed.  Block doubling keeps the cost proportional to
        the *validated* length — a cold/capacity miss right after the
        run head costs one small block scan, not a sort of the whole
        eligible stretch.
        """
        l1 = self.protocol.l1[core].l1
        payload_ok = self._payload_ok
        codes = win.codes
        lines = win.lines
        prev = win.prev_occ
        done = 0
        block = 64
        while done < n:
            lo = r + done
            hi = lo + min(block, n - done)
            # first occurrences (relative to the run) within this block
            firsts = np.flatnonzero(prev[lo:hi] < r)
            for p in (firsts + lo).tolist():
                payload = l1.get(int(lines[p]), touch=False)
                if payload is None or not payload_ok(
                    payload, int(codes[p]), core
                ):
                    return p - r
            done = hi - r
            block *= 2
        return n

    def _payload_ok(self, payload, code: int, core: int) -> bool:
        if self._is_arc:
            return payload.shared == (code == RO_SHARED)
        if code == RO_SHARED:
            # CE-family RO lines fast-path only once downgraded to S:
            # an E-state holder's masks are still remotely observable
            # via the first reader's forward (_check_remote).
            if self._is_ce_family:
                return payload.state == _S
            return True
        return payload.state >= _E

    # -- run application ---------------------------------------------------

    def _run_small(self, core: int, win: _Window, r: int, n: int, clock: int) -> bool:
        """Single-pass Python path for short-to-medium runs: validation,
        mask aggregation and LRU ordering fold into one loop over plain
        Python scalars (NumPy fixed costs dominate at these lengths).

        Aggregates until the first event whose line fails a gate, then
        applies the aggregated prefix.  Returns False (nothing applied,
        caller goes scalar) when the very first event fails.
        """
        end = r + n
        lines = win.lines[r:end].tolist()
        masks = win.masks[r:end].tolist()
        iswr = win.iswrite[r:end].tolist()
        codes = win.codes
        protocol = self.protocol
        l1 = protocol.l1[core].l1
        l1_get = l1.get
        payload_ok = self._payload_ok
        # agg: line -> [payload, read_or, write_or, last_index]
        agg: dict = {}
        writes = 0
        consumed = 0
        for i in range(n):
            line = lines[i]
            entry = agg.get(line)
            if entry is None:
                payload = l1_get(line, touch=False)
                if payload is None or not payload_ok(
                    payload, int(codes[r + i]), core
                ):
                    break
                entry = agg[line] = [payload, 0, 0, i]
            if iswr[i]:
                entry[2] |= masks[i]
                writes += 1
            else:
                entry[1] |= masks[i]
            entry[3] = i
            consumed += 1
        if not consumed:
            return False

        stats = protocol.stats
        stats.accesses += consumed
        stats.writes += writes
        stats.l1_hits += consumed
        if self._is_ce_family:
            # _on_local_access charges one metadata check per access
            stats.metadata_checks += consumed
        region = protocol.region[core]
        if self._is_arc:
            pending = protocol.pending_delta[core]
            for line, (payload, rm, wm, _last) in agg.items():
                payload.refresh(region)
                payload.read_mask |= rm
                if wm:
                    payload.write_mask |= wm
                    payload.dirty = True  # validated non-shared: no flush set
                if payload.shared and payload.unregistered_delta() != (0, 0):
                    pending.add(line)
        elif self._is_ce_family:
            for line, (payload, rm, wm, _last) in agg.items():
                if payload.region != region:
                    payload.read_mask = 0
                    payload.write_mask = 0
                    payload.region = region
                payload.read_mask |= rm
                if wm:
                    payload.write_mask |= wm
                    payload.state = _M
        else:
            for payload, _rm, wm, _last in agg.values():
                if wm:
                    payload.state = _M
        if len(agg) == 1:
            for line in agg:
                l1_get(line)  # LRU touch
        else:
            # ascending last-occurrence order = the scalar LRU order
            for line, _e in sorted(agg.items(), key=lambda kv: kv[1][3]):
                l1_get(line)

        if self.machine.sanitize:
            self._sanitize_lines(agg.keys())

        clock += int(win.cum[r + consumed - 1] - (win.cum[r - 1] if r else 0))
        self.indices[core] = win.start + r + consumed
        self._resume(core, clock)
        return True

    def _apply_run(self, core: int, win: _Window, r: int, n: int, clock: int) -> None:
        protocol = self.protocol
        stats = protocol.stats
        end = r + n
        clock += int(win.cum[end - 1] - (win.cum[r - 1] if r else 0))
        writes = int(np.count_nonzero(win.iswrite[r:end]))
        stats.accesses += n
        stats.writes += writes
        stats.l1_hits += n
        if self._is_ce_family:
            # _on_local_access charges one metadata check per access
            stats.metadata_checks += n

        run_lines = win.lines[r:end]
        run_masks = win.masks[r:end]
        run_w = win.iswrite[r:end]
        order = np.argsort(run_lines, kind="stable")
        sl = run_lines[order]
        sm = run_masks[order]
        sw = run_w[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        np.not_equal(sl[1:], sl[:-1], out=new_group[1:])
        starts = np.flatnonzero(new_group)
        zero = np.uint64(0)
        read_or = np.bitwise_or.reduceat(np.where(sw, zero, sm), starts)
        write_or = np.bitwise_or.reduceat(np.where(sw, sm, zero), starts)
        uniq = sl[starts].tolist()

        # ascending last-occurrence order reproduces scalar LRU exactly:
        # the final per-set dict order ranks touched lines by last touch.
        # Within a line's group ``order`` holds ascending positions (the
        # sort is stable), so each group's last element is its line's
        # last occurrence in the run.
        last_pos = order[np.append(starts[1:], n) - 1]
        touch_order = np.argsort(last_pos)

        l1 = protocol.l1[core].l1
        region = protocol.region[core]
        if self._is_arc:
            pending = protocol.pending_delta[core]
            for i, line in enumerate(uniq):
                payload = l1.get(line, touch=False)
                payload.refresh(region)
                payload.read_mask |= int(read_or[i])
                wm = int(write_or[i])
                if wm:
                    payload.write_mask |= wm
                    payload.dirty = True  # validated non-shared: no flush set
                if payload.shared and payload.unregistered_delta() != (0, 0):
                    pending.add(line)
        elif self._is_ce_family:
            for i, line in enumerate(uniq):
                payload = l1.get(line, touch=False)
                if payload.region != region:
                    payload.read_mask = 0
                    payload.write_mask = 0
                    payload.region = region
                payload.read_mask |= int(read_or[i])
                wm = int(write_or[i])
                if wm:
                    payload.write_mask |= wm
                    payload.state = _M
        else:
            for i, line in enumerate(uniq):
                if int(write_or[i]):
                    l1.get(line, touch=False).state = _M

        for i in touch_order.tolist():
            l1.get(uniq[i])  # LRU touch

        if self.machine.sanitize:
            self._sanitize_lines(uniq)

        self.indices[core] = win.start + end
        self._resume(core, clock)

    def _sanitize_lines(self, lines) -> None:
        """Run the armed line-scoped invariant checkers over each
        distinct line a bulk-applied run touched (the per-dispatch
        equivalent the scalar tier gets from ``arm_protocol``)."""
        checks = self._sanitize_checks
        if checks is None:
            from ..modelcheck.sanitize import line_checkers

            checks = self._sanitize_checks = line_checkers(self.protocol)
        for line in lines:
            for check in checks:
                check(line)
