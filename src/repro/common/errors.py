"""Exception types used across the simulator.

The library distinguishes configuration errors (user mistakes detected
before a simulation starts), simulation errors (internal invariant
violations — always bugs), and the semantically meaningful
:class:`RegionConflictError`, which models the *region conflict exception*
that CE/CE+/ARC deliver to a program whose synchronization-free regions
conflict.

The harness has its own failure taxonomy (:class:`HarnessError` and
subclasses) mirroring the paper's fail-precisely philosophy: a sweep
never corrupts or silently drops state — a simulation point either
completes, or it surfaces as a *typed* failure (timeout, worker crash,
point error) that the executor can retry, record and report.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value or combination was supplied."""


class TraceError(ReproError):
    """A trace is malformed (unbalanced locks, bad addresses, ...)."""


class SimulationError(ReproError):
    """An internal simulator invariant was violated.

    Seeing this exception is always a bug in the simulator, never a
    property of the simulated program.
    """


class CaptureError(ReproError):
    """A runtime capture went wrong: the instrumented program deadlocked
    under the deterministic scheduler, misused a traced sync object, or
    produced a trace the simulator could not replay."""


class StaticAnalysisError(ReproError):
    """The static conflict analyzer cannot produce a sound report for
    this source: the program leaves the analyzable capture-DSL subset
    (abstract allocation sizes, non-concrete thread counts, ...).

    Never raised for mere imprecision — unknown values widen to
    conservative results instead; this is for inputs where even the
    widened result could not be trusted."""


class StaticSoundnessError(ReproError):
    """A static hint contradicted the exact dynamic computation it is
    required to over-approximate (e.g. a line the exact classifier
    proves CONTENDED that the static hint calls private).  Seeing this
    exception means the static analyzer — or the hint plumbing — has a
    soundness bug; results derived from the hint must be discarded."""


class ServiceError(ReproError):
    """A conflict-analysis service request cannot be honored: malformed
    job spec, unknown workload or trace digest, bad protocol name, or a
    queue operation attempted from an invalid state.

    Raised at the service boundary (HTTP front door, queue, client) and
    rendered to clients as a structured error response; never raised
    for an internal service bug."""


# --------------------------------------------------------------------------
# harness failure taxonomy
# --------------------------------------------------------------------------


class HarnessError(ReproError):
    """Base class for experiment-harness execution failures."""


class PointTimeoutError(HarnessError):
    """A simulation point exceeded its wall-clock budget.

    Raised (or recorded as a :class:`PointFailure` under ``keep_going``)
    after the executor has exhausted the point's retry budget.
    """


class WorkerCrashError(HarnessError):
    """A worker process died (or the pool broke) while running a point.

    Worker crashes are *transient* by classification: the executor
    respawns the pool and resubmits only the lost points, up to the
    retry budget.
    """


class PointFailedError(HarnessError):
    """A simulation point raised a non-transient error, or a failed
    point's result was consumed as if it had succeeded."""


#: exception types the executor treats as transient (worth retrying):
#: worker/transport trouble, never deterministic point errors.
TRANSIENT_EXCEPTIONS: tuple[type[BaseException], ...] = (
    WorkerCrashError,
    pickle.PickleError,
    EOFError,
    ConnectionError,
    OSError,
    MemoryError,
)


def is_transient(exc: BaseException) -> bool:
    """Whether a point failure is plausibly transient (retry may help).

    ``BrokenProcessPool`` is handled separately by the executor (it is a
    pool-level, not point-level, condition); everything else is judged by
    type: transport/worker trouble retries, deterministic point errors
    (bad trace, simulator invariant violation) fail immediately.
    """
    if isinstance(exc, (ConfigError, TraceError, SimulationError)):
        return False
    return isinstance(exc, TRANSIENT_EXCEPTIONS)


@dataclass
class PointFailure:
    """Typed record of a simulation point that did not produce a result.

    Under ``keep_going`` the executor returns these *in place of*
    :class:`~repro.core.results.RunResult` at the failed point's index,
    so reassembly order — and therefore every downstream table — stays
    deterministic.  Consuming a failure as if it were a result (any
    attribute a ``RunResult`` would have) raises
    :class:`PointFailedError`, so partial results can never be silently
    mistaken for complete ones.
    """

    key: str
    workload: str
    protocol: str
    kind: str  # "timeout" | "crash" | "error"
    attempts: int
    message: str
    seconds: float

    #: discriminates failures from results without attribute magic
    ok = False

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "workload": self.workload,
            "protocol": self.protocol,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
            "seconds": round(self.seconds, 6),
        }

    def __getattr__(self, name: str):
        # dunder lookups (pickle/copy protocol probes) must fall through
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        raise PointFailedError(
            f"point {self.workload}/{self.protocol} {self.kind} after "
            f"{self.attempts} attempt(s): {self.message} "
            f"(attribute {name!r} requested from a failed point)"
        )


@dataclass(frozen=True)
class ConflictRecord:
    """A detected region conflict.

    Attributes
    ----------
    cycle:
        Simulated cycle at which the conflict was *detected*.  For CE/CE+
        this is the cycle of the coherence action that exposed the
        conflict; for ARC it may be as late as the end of the region that
        performed the second access.
    line_addr:
        Base address of the cache line involved.
    byte_mask:
        Bit i set means byte ``line_addr + i`` participates in the
        conflict (byte-level precision, so false sharing never conflicts).
    first_core / second_core:
        Cores whose in-progress regions conflict.  ``second_core`` is the
        core whose access completed the conflict.
    first_region / second_region:
        Per-core region sequence numbers of the conflicting regions.
    first_was_write / second_was_write:
        Access kinds; at least one is True.
    detected_by:
        Short protocol-specific tag naming the mechanism that detected
        the conflict (e.g. ``"inv"``, ``"fwd"``, ``"aim-fill"``,
        ``"llc-register"``, ``"region-end-flush"``).
    """

    cycle: int
    line_addr: int
    byte_mask: int
    first_core: int
    second_core: int
    first_region: int
    second_region: int
    first_was_write: bool
    second_was_write: bool
    detected_by: str

    def kind(self) -> str:
        """Return the conflict kind as ``"W-W"``, ``"R-W"`` or ``"W-R"``."""
        first = "W" if self.first_was_write else "R"
        second = "W" if self.second_was_write else "R"
        return f"{first}-{second}"


class RegionConflictError(ReproError):
    """Raised when a region conflict is detected and ``halt_on_conflict``
    is enabled in the simulation configuration.

    Carries the full :class:`ConflictRecord` so an exception handler (or a
    test) can inspect exactly which bytes and regions conflicted.
    """

    def __init__(self, record: ConflictRecord):
        self.record = record
        super().__init__(
            f"region conflict ({record.kind()}) on line "
            f"{record.line_addr:#x} bytes {record.byte_mask:#x}: "
            f"core {record.first_core} region {record.first_region} vs "
            f"core {record.second_core} region {record.second_region} "
            f"at cycle {record.cycle} (detected by {record.detected_by})"
        )
