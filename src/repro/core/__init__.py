"""Simulator core: machine wiring, engine, stats, results, public API."""

from .api import ALL_PROTOCOLS, compare_protocols, run_program
from .machine import Machine
from .results import Comparison, RunResult, geomean
from .simulator import SYNC_OP_CYCLES, Simulator
from .stats import Stats

__all__ = [
    "ALL_PROTOCOLS",
    "Comparison",
    "Machine",
    "RunResult",
    "SYNC_OP_CYCLES",
    "Simulator",
    "Stats",
    "compare_protocols",
    "geomean",
    "run_program",
]
