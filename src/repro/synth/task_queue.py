"""Dynamic task queue ("swaptions-like").

Threads repeatedly pop a task index from a lock-protected shared queue
head, read the task's slice of a read-shared input array, "compute"
(gap cycles), and write the result to a task-indexed slot of a shared
output array.  Output slots are disjoint lines, so there are no
conflicts; the hot queue-head word migrates under the lock while the
bulk traffic is read-shared input plus write-once output — a mix that
exercises both private-friendly and migratory paths.
"""

from __future__ import annotations

from ..common.rng import make_rng
from ..trace.program import Program
from .base import scaled, workload
from .patterns import AddressSpace, TraceAssembler, random_span, strided_span


@workload("taskqueue-swaptions")
def generate(
    num_threads: int,
    seed: int,
    scale: float,
    *,
    tasks_per_thread: int = 200,
    input_kb: int = 128,
    reads_per_task: int = 20,
    output_words: int = 8,
    compute_gap: int = 30,
) -> Program:
    tasks = scaled(tasks_per_thread, scale)
    space = AddressSpace()
    head_addr = space.alloc_lines(1)
    input_bytes = input_kb * 1024
    input_base = space.alloc(input_bytes)
    # one line-aligned output slot per (thread, task): disjoint writes
    total_tasks = num_threads * tasks
    output_base = space.alloc_lines(total_tasks)
    lock = 0

    traces = []
    for tid in range(num_threads):
        rng = make_rng(seed, "taskqueue", tid)
        asm = TraceAssembler()
        for task in range(tasks):
            asm.acquire(lock)
            asm.read(head_addr)
            asm.write(head_addr)
            asm.release(lock)
            task_id = tid * tasks + task
            asm.reads(
                random_span(rng, input_base, input_bytes, reads_per_task),
                gap=1,
            )
            asm.writes(
                strided_span(output_base + task_id * 64, output_words),
                gap=compute_gap if task % 8 == 0 else 1,
            )
        traces.append(asm.build())
    return Program(traces, name="taskqueue-swaptions")
