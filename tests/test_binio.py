"""The streaming binary trace format: codecs, round-trips, rejection.

Covers the varint/zigzag codecs on their edge values, property-based
round-trips Program ↔ npz ↔ binio (the two formats must agree event
for event), the streamed out-of-core reader against the materialized
one, and the reader's rejection of truncated and corrupted files.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TraceError
from repro.trace import (
    BinTraceReader,
    BinTraceWriter,
    Program,
    TraceBuilder,
    load_program,
    save_program,
)
from repro.trace.binio import (
    FORMAT_VERSION,
    MAGIC,
    decode_varints,
    encode_varints,
    load_program_bin,
    salvage_rtb,
    save_program_bin,
    scan_rtb,
    stream_program_bin,
    zigzag_decode,
    zigzag_encode,
)
from repro.trace.events import EVENT_DTYPE


# ---------------------------------------------------------------- codecs


class TestVarint:
    def test_edge_values(self):
        values = np.array(
            [0, 1, 127, 128, 129, 2**14 - 1, 2**14, 2**32, 2**62 - 1],
            dtype=np.uint64,
        )
        blob = np.frombuffer(encode_varints(values), dtype=np.uint8)
        decoded, consumed = decode_varints(blob, len(values))
        assert consumed == len(blob)
        assert np.array_equal(decoded, values)

    def test_single_byte_values_encode_to_one_byte(self):
        values = np.arange(128, dtype=np.uint64)
        assert len(encode_varints(values)) == 128

    def test_empty(self):
        assert encode_varints(np.zeros(0, dtype=np.uint64)) == b""
        decoded, consumed = decode_varints(np.zeros(0, dtype=np.uint8), 0)
        assert len(decoded) == 0 and consumed == 0

    def test_truncated_stream_rejected(self):
        blob = np.frombuffer(
            encode_varints(np.array([2**40], dtype=np.uint64)), dtype=np.uint8
        )
        with pytest.raises(TraceError):
            decode_varints(blob[:-1], 1)

    @given(
        st.lists(st.integers(0, 2**62 - 1), min_size=0, max_size=200)
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.uint64)
        blob = np.frombuffer(encode_varints(arr), dtype=np.uint8)
        decoded, consumed = decode_varints(blob, len(arr))
        assert consumed == len(blob)
        assert np.array_equal(decoded, arr)


class TestZigzag:
    @given(st.lists(st.integers(-(2**31), 2**31 - 1), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(arr)), arr)

    def test_small_magnitudes_stay_small(self):
        # zigzag maps -1,1,-2,2 ... to 1,2,3,4: sign costs one bit
        arr = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        assert zigzag_encode(arr).tolist() == [0, 1, 2, 3, 4]


# ----------------------------------------------------------- round-trips


def small_program(name="bin-prog"):
    t0 = (
        TraceBuilder()
        .read(0)
        .acquire(1)
        .write(8, size=4, gap=3)
        .release(1)
        .barrier(2)
        .build()
    )
    t1 = TraceBuilder().barrier(2).read(64, size=1).write(4096).build()
    return Program([t0, t1], name=name)


@st.composite
def programs(draw):
    num_threads = draw(st.integers(1, 3))
    traces = []
    for _ in range(num_threads):
        builder = TraceBuilder()
        for _ in range(draw(st.integers(0, 30))):
            op = draw(st.integers(0, 1))
            addr = draw(st.integers(0, 2**20)) * 4
            size = draw(st.sampled_from([1, 2, 4, 8]))
            gap = draw(st.integers(0, 50))
            if op == 0:
                builder.read(addr, size=size, gap=gap)
            else:
                builder.write(addr, size=size, gap=gap)
            if draw(st.booleans()):
                lock = draw(st.integers(0, 3))
                if lock in builder.held_locks:
                    builder.release(lock)
                elif draw(st.booleans()):
                    builder.acquire(lock)
        for lock in builder.held_locks:
            builder.release(lock)
        traces.append(builder.build())
    return Program(traces, name="hypo")


def assert_programs_equal(a: Program, b: Program):
    assert a.name == b.name
    assert a.num_threads == b.num_threads
    assert a.barrier_participants == b.barrier_participants
    for ta, tb in zip(a.traces, b.traces):
        assert ta == tb


class TestRoundTrip:
    def test_explicit_program(self, tmp_path):
        original = small_program()
        path = tmp_path / "p.rtb"
        save_program_bin(original, path)
        assert_programs_equal(original, load_program_bin(path))

    def test_io_dispatch_by_extension_and_magic(self, tmp_path):
        original = small_program()
        path = tmp_path / "p.rtb"
        save_program(original, path)
        assert path.read_bytes()[: len(MAGIC)] == MAGIC
        # load_program sniffs magic, not extension
        disguised = tmp_path / "p.npz"
        disguised.write_bytes(path.read_bytes())
        assert_programs_equal(original, load_program(disguised))

    def test_empty_trace_threads(self, tmp_path):
        program = Program(
            [TraceBuilder().build(), TraceBuilder().read(0).build()],
            name="mostly-empty",
        )
        path = tmp_path / "e.rtb"
        save_program_bin(program, path)
        assert_programs_equal(program, load_program_bin(path))

    @given(program=programs())
    @settings(max_examples=25, deadline=None)
    def test_program_npz_binio_agree(self, program, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("rt")
        npz, rtb = tmp / "p.npz", tmp / "p.rtb"
        save_program(program, npz)
        save_program(program, rtb)
        from_npz = load_program(npz)
        from_rtb = load_program(rtb)
        assert_programs_equal(from_npz, from_rtb)
        assert_programs_equal(program, from_rtb)

    def test_multi_chunk_writer(self, tmp_path):
        builder = TraceBuilder()
        for i in range(1000):
            builder.write(i * 8, gap=i % 7)
        program = Program([builder.build()], name="chunky")
        path = tmp_path / "c.rtb"
        save_program_bin(program, path, chunk_events=64)
        with BinTraceReader(path) as reader:
            assert len(reader._chunks[0]) > 1
        assert_programs_equal(program, load_program_bin(path))


# -------------------------------------------------------------- streaming


class TestStreaming:
    def test_streamed_columns_match_materialized(self, tmp_path):
        builder = TraceBuilder()
        for i in range(500):
            builder.write(i * 16, size=4, gap=i % 5)
            if i % 50 == 49:
                builder.acquire(0).release(0)
        program = Program([builder.build()], name="stream")
        path = tmp_path / "s.rtb"
        save_program_bin(program, path, chunk_events=32)

        streamed = stream_program_bin(path)
        got = streamed.traces[0].columns()
        want = program.traces[0].columns()
        assert all(len(g) == len(w) for g, w in zip(got, want))
        # the five views share one forward-only cursor: walk index-major
        for i in range(len(want[0])):
            assert tuple(g[i] for g in got) == tuple(w[i] for w in want)

    def test_streamed_materialize(self, tmp_path):
        program = small_program("mat")
        path = tmp_path / "m.rtb"
        save_program_bin(program, path)
        assert_programs_equal(program, stream_program_bin(path).materialize())

    def test_forward_only_cursor_rejects_rewind(self, tmp_path):
        builder = TraceBuilder()
        for i in range(200):
            builder.read(i * 8)
        path = tmp_path / "f.rtb"
        save_program_bin(
            Program([builder.build()], name="fwd"), path, chunk_events=32
        )
        kinds = stream_program_bin(path).traces[0].columns()[0]
        assert kinds[150] == 0
        with pytest.raises(TraceError, match="forward"):
            kinds[0]


# -------------------------------------------------------------- rejection


class TestRejection:
    def write_file(self, tmp_path, chunk_events=32):
        builder = TraceBuilder()
        for i in range(256):
            builder.write(i * 8)
        program = Program([builder.build()], name="victim")
        path = tmp_path / "v.rtb"
        save_program_bin(program, path, chunk_events=chunk_events)
        return path

    def test_truncated_footer_rejected(self, tmp_path):
        path = self.write_file(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceError, match="truncat"):
            load_program_bin(path)

    def test_corrupt_payload_rejected(self, tmp_path):
        path = self.write_file(tmp_path)
        data = bytearray(path.read_bytes())
        # flip a byte well inside the first chunk payload
        data[60] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError):
            load_program_bin(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = self.write_file(tmp_path)
        data = bytearray(path.read_bytes())
        data[:4] = b"NOPE"
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError):
            load_program_bin(path)

    def test_future_version_rejected(self, tmp_path):
        path = self.write_file(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(MAGIC)] = FORMAT_VERSION + 1
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError, match="version"):
            load_program_bin(path)

    def test_writer_abort_leaves_rejectable_torso(self, tmp_path):
        path = tmp_path / "abort.rtb"
        events = np.zeros(4, dtype=EVENT_DTYPE)
        try:
            with BinTraceWriter(path, 1, "abort") as writer:
                writer.append(0, events)
                raise RuntimeError("capture failed")
        except RuntimeError:
            pass
        with pytest.raises(TraceError):
            load_program_bin(path)


# ------------------------------------------------------------- salvage


class TestSalvage:
    """Torn-write recovery: scan_rtb/salvage_rtb recover the valid
    chunk prefix of damaged traces as files the strict reader accepts."""

    def write_file(self, tmp_path, num_threads=2, chunk_events=32):
        program = Program(
            [
                TraceBuilder()
                .write(8 * t, gap=t)
                .barrier(0)
                .read(4096 + 8 * t)
                .build()
                for t in range(num_threads)
            ],
            name="salvage-victim",
        )
        # pad thread 0 so the file spans several chunks
        builder = TraceBuilder()
        for i in range(200):
            builder.write(i * 16, gap=1)
        traces = [builder.build()] + list(program.traces[1:])
        program = Program(traces, name="salvage-victim")
        path = tmp_path / "v.rtb"
        save_program_bin(program, path, chunk_events=chunk_events)
        return path, program

    def test_scan_clean_file_is_ok(self, tmp_path):
        path, program = self.write_file(tmp_path)
        report = scan_rtb(path)
        assert report.ok and report.reason == ""
        assert report.torn_bytes == 0
        assert report.events == sum(len(t.events) for t in program.traces)
        assert report.num_threads == program.num_threads

    def test_salvage_clean_file_in_place_is_noop(self, tmp_path):
        path, _ = self.write_file(tmp_path)
        before = path.read_bytes()
        assert salvage_rtb(path).ok
        assert path.read_bytes() == before

    def test_salvage_truncated_file(self, tmp_path):
        path, program = self.write_file(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: int(len(data) * 0.6)])
        report = scan_rtb(path)
        assert not report.ok
        assert 0 < report.events < sum(
            len(t.events) for t in program.traces
        )
        salvage_rtb(path)  # in place
        recovered = load_program_bin(path)  # strict reader accepts it
        assert recovered.num_threads == program.num_threads
        # every salvaged event is an exact prefix of the original trace
        total = 0
        for orig, got in zip(program.traces, recovered.traces):
            assert np.array_equal(
                got.events, orig.events[: len(got.events)]
            )
            total += len(got.events)
        assert total == report.events

    def test_salvage_bitflip_to_new_dest(self, tmp_path):
        path, program = self.write_file(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        dest = tmp_path / "recovered.rtb"
        report = salvage_rtb(path, dest)
        assert not report.ok and report.events > 0
        # source untouched, destination strict-readable
        assert path.read_bytes() == bytes(data)
        recovered = load_program_bin(dest)
        for orig, got in zip(program.traces, recovered.traces):
            assert np.array_equal(got.events, orig.events[: len(got.events)])
        assert not list(tmp_path.glob(".tmp-*"))

    def test_salvage_preserves_footer_barriers(self, tmp_path):
        path, program = self.write_file(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data + b"\xff trailing garbage")
        report = scan_rtb(path)
        assert not report.ok and report.reason == "data after the footer"
        assert report.events == sum(len(t.events) for t in program.traces)
        salvage_rtb(path)
        recovered = load_program_bin(path)
        assert recovered.barrier_participants == program.barrier_participants

    def test_header_damage_is_unsalvageable(self, tmp_path):
        path, _ = self.write_file(tmp_path)
        data = bytearray(path.read_bytes())
        data[:4] = b"NOPE"
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError):
            scan_rtb(path)
        with pytest.raises(TraceError):
            salvage_rtb(path)
