"""The access information memory (AIM) — CE+'s on-chip metadata cache.

One AIM slice sits next to each LLC bank and caches spilled
access-information entries for lines homed at that bank.  The
*architectural* metadata contents live in the protocol's
:class:`~repro.protocols.metadata.AccessInfoTable`; the AIM models only
where those bits physically are (on-chip vs DRAM), i.e. the latency and
off-chip traffic of reaching them:

* read hit: AIM latency.
* read miss: AIM latency + DRAM metadata fill (+ dirty victim
  writeback), then the entry is resident.
* write (spill/update/clear): write-allocate.  Under the default
  write-back policy dirty entries only reach DRAM on eviction; the
  write-through ablation pays a DRAM metadata write every time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..common.config import AimConfig
from ..mem.cache import SetAssocCache
from ..mem.dram import DramModel

if TYPE_CHECKING:
    from ..core.stats import Stats


class _AimEntry:
    __slots__ = ("dirty",)

    def __init__(self, dirty: bool):
        self.dirty = dirty


class AimSlice:
    """One bank's AIM slice (a small set-associative metadata cache)."""

    __slots__ = ("cfg", "metadata_bytes", "dram", "stats", "cache")

    def __init__(
        self, cfg: AimConfig, metadata_bytes: int, dram: DramModel, stats: "Stats"
    ):
        self.cfg = cfg
        self.metadata_bytes = metadata_bytes
        self.dram = dram
        self.stats = stats
        # Entries are keyed by line address; reuse the line-indexed cache
        # with the AIM's own geometry (entry-sized "lines").
        self.cache = SetAssocCache(cfg.num_sets, cfg.assoc, line_size=64)

    def read(self, line: int, cycle: int) -> int:
        """Look up a line's metadata; returns latency."""
        latency = self.cfg.latency
        if self.cache.get(line) is not None:
            self.stats.aim_hits += 1
            return latency
        self.stats.aim_misses += 1
        latency += self.dram.access(
            cycle, self.metadata_bytes, write=False, metadata=True
        )
        self._install(line, dirty=False, cycle=cycle)
        return latency

    def write(self, line: int, cycle: int) -> int:
        """Spill/update/clear a line's metadata; returns latency."""
        latency = self.cfg.latency
        self.stats.aim_writebacks += 1
        payload = self.cache.get(line)
        if payload is not None:
            payload.dirty = not self.cfg.write_through
        else:
            self._install(line, dirty=not self.cfg.write_through, cycle=cycle)
        if self.cfg.write_through:
            latency += self.dram.access(
                cycle, self.metadata_bytes, write=True, metadata=True
            )
        return latency

    def _install(self, line: int, *, dirty: bool, cycle: int) -> None:
        victim = self.cache.insert(line, _AimEntry(dirty))
        if victim is not None:
            self.stats.aim_evictions += 1
            _, entry = victim
            if entry.dirty:
                self.dram.access(cycle, self.metadata_bytes, write=True, metadata=True)
