"""Capture CLI: record real-program workloads and replay their traces.

Front end for :mod:`repro.capture`.  ``capture`` runs one of the
registered ``capture-*`` workloads (a real multithreaded Python program
instrumented with traced memory and sync proxies) and writes the
recorded trace — ``.rtb`` streams the binary format chunk by chunk
while the program runs; ``.npz`` materializes in memory first.
``replay`` simulates a recorded trace (or a workload captured on the
fly) under one or all protocols, streaming ``.rtb`` inputs out of core.
``summary`` prints the Table II-style characteristics of a capture.

Usage::

    python -m repro.tools.capture_cli capture capture-histogram -o hist.rtb
    python -m repro.tools.capture_cli replay hist.rtb --protocol all
    python -m repro.tools.capture_cli summary hist.rtb
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..capture.workloads import CAPTURE_WORKLOADS
from ..common.config import SystemConfig
from ..common.errors import TraceError
from ..core.api import ALL_PROTOCOLS, run_program
from ..harness.tables import TextTable
from ..synth.base import generate
from ..trace.binio import stream_program_bin
from ..trace.io import BIN_SUFFIX, load_program, save_program
from ..trace.program import Program
from .inspect import parse_params


def _capture(name: str, threads: int, seed: int, scale: float, **params) -> Program:
    if name not in CAPTURE_WORKLOADS:
        known = ", ".join(sorted(CAPTURE_WORKLOADS))
        raise SystemExit(f"unknown capture workload {name!r} (known: {known})")
    return generate(name, num_threads=threads, seed=seed, scale=scale, **params)


def _load_or_capture(
    target: str, threads: int, seed: int, scale: float, **params
) -> Program:
    path = Path(target)
    if path.suffix in (BIN_SUFFIX, ".npz") and path.exists():
        return load_program(path)
    return _capture(target, threads, seed, scale, **params)


def _pow2_at_least(n: int) -> int:
    cores = 2
    while cores < n:
        cores *= 2
    return cores


def cmd_capture(args: argparse.Namespace) -> int:
    program = _capture(
        args.workload, args.threads, args.seed, args.scale,
        **parse_params(args.param),
    )
    out = Path(args.output)
    if out.suffix not in (BIN_SUFFIX, ".npz"):
        raise SystemExit(
            f"output {out.name!r} must end in {BIN_SUFFIX} or .npz"
        )
    save_program(program, out)
    stats = program.stats()
    print(
        f"captured {program.name}: {stats.num_events} events across "
        f"{stats.num_threads} threads -> {out} ({out.stat().st_size} bytes)"
    )
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    path = Path(args.target)
    stream = args.stream
    if stream and path.suffix != BIN_SUFFIX:
        raise SystemExit(f"--stream needs a {BIN_SUFFIX} trace file")

    def open_program() -> Program:
        if stream:
            return stream_program_bin(path)
        return _load_or_capture(
            args.target, args.threads, args.seed, args.scale,
            **parse_params(args.param),
        )

    program = open_program()
    cores = args.cores or _pow2_at_least(program.num_threads)
    protocols = (
        list(ALL_PROTOCOLS) if args.protocol == "all" else [args.protocol]
    )
    table = TextTable(
        f"Replay: {program.name} ({program.num_threads} threads, "
        f"{cores} cores)",
        ["protocol", "cycles", "l1_miss_rate", "flit_hops", "conflicts"],
    )
    report: dict[str, dict[str, float]] = {}
    for index, protocol in enumerate(protocols):
        if index and stream:
            # a streamed trace's forward-only cursors are exhausted
            # after one simulation; reopen the file per protocol
            program = open_program()
        cfg = SystemConfig(num_cores=cores, protocol=protocol)
        # capture and the writers validate at record time; streamed
        # programs cannot be re-scanned eagerly anyway
        result = run_program(cfg, program, validate=not stream)
        summary = result.summary()
        report[result.protocol.value] = summary
        table.add_row(
            result.protocol.value,
            summary["cycles"],
            round(summary["l1_miss_rate"], 4),
            summary["flit_hops"],
            summary["conflicts"],
        )
    if args.format == "json":
        print(json.dumps({"target": program.name, "runs": report},
                         indent=2, sort_keys=True))
    else:
        print(table.render())
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    program = _load_or_capture(
        args.target, args.threads, args.seed, args.scale,
        **parse_params(args.param),
    )
    stats = program.stats()
    table = TextTable(
        f"Capture: {program.name}", ["characteristic", "value"]
    )
    table.add_row("threads", stats.num_threads)
    table.add_row("events", stats.num_events)
    table.add_row("accesses", stats.num_accesses)
    table.add_row("writes", stats.num_writes)
    table.add_row("sync ops", stats.num_sync_ops)
    table.add_row("regions", stats.num_regions)
    table.add_row("distinct lines", stats.num_lines)
    table.add_row("shared lines", stats.shared_lines)
    print(table.render())
    return 0


def _add_build_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--threads", type=int, default=4)
    sub.add_argument("--seed", type=int, default=1)
    sub.add_argument("--scale", type=float, default=0.2)
    sub.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="workload parameter (repeatable)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-capture")
    subs = parser.add_subparsers(dest="command", required=True)

    cap = subs.add_parser(
        "capture", help="record a capture-* workload to a trace file"
    )
    cap.add_argument("workload", help="capture workload name")
    cap.add_argument(
        "-o", "--output", required=True,
        help=f"trace path ({BIN_SUFFIX} streams, .npz materializes)",
    )
    _add_build_args(cap)
    cap.set_defaults(func=cmd_capture)

    rep = subs.add_parser(
        "replay", help="simulate a recorded trace or fresh capture"
    )
    rep.add_argument("target", help=f"trace path ({BIN_SUFFIX}/.npz) or workload name")
    rep.add_argument(
        "--protocol", choices=("mesi", "ce", "ce+", "arc", "all"),
        default="all",
    )
    rep.add_argument(
        "--cores", type=int, default=0,
        help="core count (default: threads rounded up to a power of two)",
    )
    rep.add_argument(
        "--stream", action="store_true",
        help=f"replay a {BIN_SUFFIX} file out of core, one chunk at a time",
    )
    rep.add_argument("--format", choices=("text", "json"), default="text")
    _add_build_args(rep)
    rep.set_defaults(func=cmd_replay)

    summ = subs.add_parser(
        "summary", help="print a capture's characteristics"
    )
    summ.add_argument("target", help=f"trace path ({BIN_SUFFIX}/.npz) or workload name")
    _add_build_args(summ)
    summ.set_defaults(func=cmd_summary)

    lst = subs.add_parser("list", help="list capture workloads")
    lst.set_defaults(func=lambda _args: (
        [print(name) for name in sorted(CAPTURE_WORKLOADS)], 0)[1])

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
