"""Protocol-level tests for Conflict Exceptions (CE).

CE = MESI + byte-level access bits + eager conflict checks + metadata
spill/fill/clear against main memory.
"""

import pytest

from repro.common.config import CacheConfig, SystemConfig
from repro.common.errors import RegionConflictError
from repro.core.machine import Machine
from repro.protocols.ce import CeProtocol
from repro.trace.events import ACQUIRE, RELEASE


def make(num_cores=4, **cfg_kw):
    cfg = SystemConfig(num_cores=num_cores, protocol="ce", **cfg_kw)
    machine = Machine(cfg)
    return machine, CeProtocol(machine)


LINE = 0x4000


class TestAccessBits:
    def test_read_sets_read_mask(self):
        _, proto = make()
        proto.access(0, LINE + 8, 4, False, 0)
        payload = proto.l1[0].get(LINE)
        assert payload.read_mask == 0b1111 << 8
        assert payload.write_mask == 0
        assert payload.region == 0

    def test_write_sets_write_mask(self):
        _, proto = make()
        proto.access(0, LINE, 8, True, 0)
        payload = proto.l1[0].get(LINE)
        assert payload.write_mask == 0xFF

    def test_masks_accumulate_within_region(self):
        _, proto = make()
        proto.access(0, LINE, 4, False, 0)
        proto.access(0, LINE + 4, 4, False, 1)
        assert proto.l1[0].get(LINE).read_mask == 0xFF

    def test_masks_reset_across_regions(self):
        _, proto = make()
        proto.access(0, LINE, 8, False, 0)
        proto.region_boundary(0, 10, RELEASE)
        proto.access(0, LINE, 4, True, 20)
        payload = proto.l1[0].get(LINE)
        assert payload.read_mask == 0
        assert payload.write_mask == 0b1111
        assert payload.region == 1


class TestEagerConflicts:
    def test_write_write_conflict_via_forward(self):
        machine, proto = make()
        proto.access(0, LINE, 8, True, 0)
        proto.access(1, LINE, 8, True, 5)
        assert len(machine.stats.conflicts) == 1
        record = machine.stats.conflicts[0]
        assert record.kind() == "W-W"
        assert record.first_core == 0 and record.second_core == 1
        assert record.byte_mask == 0xFF
        assert record.detected_by == "fwd"

    def test_read_write_conflict_via_invalidation(self):
        machine, proto = make()
        proto.access(0, LINE, 8, False, 0)
        proto.access(1, LINE, 8, False, 2)   # both sharers
        proto.access(2, LINE, 8, True, 5)    # invalidates both
        kinds = {c.kind() for c in machine.stats.conflicts}
        assert kinds == {"R-W"}
        assert len(machine.stats.conflicts) == 2

    def test_write_read_conflict_via_forward(self):
        machine, proto = make()
        proto.access(0, LINE, 8, True, 0)
        proto.access(1, LINE, 8, False, 5)
        assert [c.kind() for c in machine.stats.conflicts] == ["W-R"]

    def test_read_read_never_conflicts(self):
        machine, proto = make()
        proto.access(0, LINE, 8, False, 0)
        proto.access(1, LINE, 8, False, 5)
        proto.access(2, LINE, 8, False, 9)
        assert machine.stats.conflicts == []

    def test_byte_disjoint_accesses_never_conflict(self):
        """False sharing must not raise (byte-level precision)."""
        machine, proto = make()
        proto.access(0, LINE, 8, True, 0)
        proto.access(1, LINE + 8, 8, True, 5)
        proto.access(2, LINE + 16, 8, True, 9)
        assert machine.stats.conflicts == []

    def test_no_conflict_across_region_boundary(self):
        machine, proto = make()
        proto.access(0, LINE, 8, True, 0)
        proto.region_boundary(0, 10, RELEASE)  # region with the write ends
        proto.access(1, LINE, 8, True, 20)
        assert machine.stats.conflicts == []

    def test_same_region_pair_reported_once(self):
        machine, proto = make(l1=CacheConfig(size=256, assoc=2, line_size=64))
        proto.access(0, 0x0, 8, False, 0)   # core0 reads line A
        proto.access(1, 0x0, 8, True, 5)    # R-W conflict; core0's bits spill
        assert len(machine.stats.conflicts) == 1
        # Evict line A from core1 (same-set pressure), then write it again:
        # the home re-checks core0's spilled bits — same region pair.
        proto.access(1, 0x80, 8, False, 10)
        proto.access(1, 0x100, 8, False, 20)
        proto.access(1, 0x0, 8, True, 30)
        assert len(machine.stats.conflicts) == 1

    def test_halt_on_conflict_raises(self):
        machine, proto = make(halt_on_conflict=True)
        proto.access(0, LINE, 8, True, 0)
        with pytest.raises(RegionConflictError) as exc_info:
            proto.access(1, LINE, 8, True, 5)
        assert exc_info.value.record.kind() == "W-W"


class TestMetadataSpill:
    def tiny(self):
        return make(l1=CacheConfig(size=256, assoc=2, line_size=64))

    def test_eviction_with_live_bits_spills(self):
        machine, proto = self.tiny()
        lines = [0x0, 0x80, 0x100]  # same set
        for i, line in enumerate(lines):
            proto.access(0, line, 8, True, i)
        assert machine.stats.metadata_spills == 1
        assert machine.dram.metadata_bytes_written == proto.cfg.metadata_bytes
        assert 0x0 in proto.spill_log[0]

    def test_eviction_with_stale_bits_does_not_spill(self):
        machine, proto = self.tiny()
        lines = [0x0, 0x80, 0x100]
        proto.access(0, lines[0], 8, False, 0)
        proto.region_boundary(0, 5, RELEASE)  # bits go stale
        proto.access(0, lines[1], 8, False, 10)
        proto.access(0, lines[2], 8, False, 20)
        assert machine.stats.metadata_spills == 0

    def test_spilled_metadata_still_detects_conflict(self):
        machine, proto = self.tiny()
        lines = [0x0, 0x80, 0x100]
        for i, line in enumerate(lines):
            proto.access(0, line, 8, True, i)  # lines[0] spilled
        proto.access(1, lines[0], 8, True, 50)
        conflicts = machine.stats.conflicts
        assert len(conflicts) == 1
        assert conflicts[0].detected_by == "meta-check"
        assert conflicts[0].first_core == 0

    def test_refill_restores_own_bits(self):
        machine, proto = self.tiny()
        lines = [0x0, 0x80, 0x100]
        for i, line in enumerate(lines):
            proto.access(0, line, 8, True, i)
        fills_before = machine.stats.metadata_fills
        proto.access(0, lines[0], 4, False, 50)  # re-touch spilled line
        assert machine.stats.metadata_fills == fills_before + 1
        payload = proto.l1[0].get(lines[0])
        assert payload.write_mask == 0xFF  # restored from spill
        assert lines[0] not in proto.spill_log[0]

    def test_region_end_clears_spilled(self):
        machine, proto = self.tiny()
        lines = [0x0, 0x80, 0x100]
        for i, line in enumerate(lines):
            proto.access(0, line, 8, True, i)
        assert machine.stats.metadata_spills == 1
        latency = proto.region_boundary(0, 100, ACQUIRE)
        assert latency > 0
        assert machine.stats.metadata_clears == 1
        assert proto.spill_log[0] == set()
        assert proto.meta_table.get_line(lines[0]) is None

    def test_invalidation_spills_live_bits(self):
        machine, proto = make()
        proto.access(0, LINE, 8, False, 0)
        proto.access(1, LINE, 8, False, 1)
        # core 2 writes: sharers invalidated; their live read bits spill
        proto.access(2, LINE, 8, True, 10)
        assert machine.stats.metadata_spills == 2


class TestBoundaryNoWork:
    def test_boundary_without_spills_is_free(self):
        _, proto = make()
        proto.access(0, LINE, 8, True, 0)
        assert proto.region_boundary(0, 10, RELEASE) == 0
