"""Drop-in traced synchronization objects.

These mirror the ``threading`` API shapes (``with lock:``,
``barrier.wait()``, ``condition.wait/notify``) but synchronize through
the session's deterministic scheduler and record ACQUIRE / RELEASE /
BARRIER trace events — the region boundaries of the captured program.

Semantics map onto the simulator's exactly:

* a lock acquire is recorded at *grant* time (the simulator charges the
  acquire when the lock is obtained, not when the thread starts
  waiting); waiters are granted in FIFO order;
* a barrier records one BARRIER event per arriving thread per episode;
* a condition ``wait`` records the lock hand-off it really performs —
  a RELEASE at wait time and an ACQUIRE when the woken thread regains
  the lock.  No extra event kind is needed: condition waits are region
  boundaries precisely because they release and re-acquire.
"""

from __future__ import annotations

from ..common.errors import CaptureError


class TracedLock:
    """A traced, non-reentrant FIFO mutex."""

    __slots__ = ("_session", "lock_id", "_holder", "_waiters")

    def __init__(self, session, lock_id: int):
        self._session = session
        self.lock_id = lock_id
        self._holder: int | None = None
        self._waiters: list[int] = []

    @property
    def holder(self) -> int | None:
        return self._holder

    def acquire(self) -> None:
        session = self._session
        tid = session.current_tid()
        scheduler = session.scheduler
        # a sync op is a switch point: let contention actually arise
        scheduler.yield_control(tid)
        if self._holder is None:
            self._grant(tid)
            return
        if self._holder == tid:
            raise CaptureError(
                f"thread {tid} re-acquired traced lock {self.lock_id} "
                "(locks are not reentrant)"
            )
        self._waiters.append(tid)
        scheduler.block(tid)
        # unblocked by the releasing thread, which already made us holder
        if self._holder != tid:  # pragma: no cover - scheduler invariant
            raise CaptureError(
                f"lock {self.lock_id} woke thread {tid} without granting it"
            )
        session.recorder_for(tid).acquire(self.lock_id)

    def _grant(self, tid: int) -> None:
        self._holder = tid
        self._session.recorder_for(tid).acquire(self.lock_id)

    def release(self) -> None:
        session = self._session
        tid = session.current_tid()
        if self._holder != tid:
            raise CaptureError(
                f"thread {tid} released traced lock {self.lock_id} held by "
                f"{self._holder}"
            )
        session.recorder_for(tid).release(self.lock_id)
        self._pass_on()
        session.scheduler.yield_control(tid)

    def _pass_on(self) -> None:
        """Hand the lock to the first waiter (or free it)."""
        if self._waiters:
            heir = self._waiters.pop(0)
            self._holder = heir
            self._session.scheduler.make_ready(heir)
        else:
            self._holder = None

    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TracedLock(id={self.lock_id}, holder={self._holder})"


class TracedBarrier:
    """A traced cyclic barrier over ``parties`` threads."""

    __slots__ = ("_session", "barrier_id", "parties", "_arrived", "episode_counts")

    def __init__(self, session, barrier_id: int, parties: int):
        if parties <= 0 or parties > session.num_threads:
            raise CaptureError(
                f"barrier parties must be 1..{session.num_threads}, got {parties}"
            )
        self._session = session
        self.barrier_id = barrier_id
        self.parties = parties
        self._arrived: list[int] = []
        self.episode_counts = [0] * session.num_threads

    def wait(self) -> None:
        session = self._session
        tid = session.current_tid()
        if tid in self._arrived:
            raise CaptureError(
                f"thread {tid} re-entered barrier {self.barrier_id} episode"
            )
        session.recorder_for(tid).barrier(self.barrier_id)
        self.episode_counts[tid] += 1
        self._arrived.append(tid)
        if len(self._arrived) == self.parties:
            # episode complete: wake everyone in arrival order
            waiters = self._arrived[:-1]
            self._arrived = []
            for waiter in waiters:
                session.scheduler.make_ready(waiter)
            session.scheduler.yield_control(tid)
        else:
            session.scheduler.block(tid)

    def __repr__(self) -> str:
        return (
            f"TracedBarrier(id={self.barrier_id}, parties={self.parties}, "
            f"arrived={self._arrived})"
        )


class TracedCondition:
    """A traced condition variable bound to a :class:`TracedLock`.

    As with ``threading.Condition``, the lock must be held around
    :meth:`wait` / :meth:`notify`, and :meth:`wait` should sit in a
    while-predicate loop.  Waiters move to the lock's FIFO queue on
    notify, so wake-ups and lock re-grants are deterministic.
    """

    __slots__ = ("_session", "lock", "_waiters")

    def __init__(self, session, lock: TracedLock):
        self._session = session
        self.lock = lock
        self._waiters: list[int] = []

    def _require_lock(self, tid: int, op: str) -> None:
        if self.lock.holder != tid:
            raise CaptureError(
                f"condition {op} without holding lock {self.lock.lock_id}"
            )

    def wait(self) -> None:
        session = self._session
        tid = session.current_tid()
        self._require_lock(tid, "wait")
        # really releases the lock: record it and hand the lock on
        session.recorder_for(tid).release(self.lock.lock_id)
        self._waiters.append(tid)
        self.lock._pass_on()
        session.scheduler.block(tid)
        # a notifier moved us to the lock queue and a releaser granted it
        if self.lock.holder != tid:  # pragma: no cover - scheduler invariant
            raise CaptureError(
                f"condition woke thread {tid} without the lock"
            )
        session.recorder_for(tid).acquire(self.lock.lock_id)

    def notify(self, n: int = 1) -> None:
        tid = self._session.current_tid()
        self._require_lock(tid, "notify")
        for _ in range(min(n, len(self._waiters))):
            waiter = self._waiters.pop(0)
            # the waiter contends for the lock: it stays parked on the
            # lock's FIFO queue (the notifier holds the lock right now)
            # until a release grants it
            self.lock._waiters.append(waiter)

    def notify_all(self) -> None:
        self.notify(len(self._waiters))

    def __repr__(self) -> str:
        return (
            f"TracedCondition(lock={self.lock.lock_id}, waiters={self._waiters})"
        )
