"""The named workload suite (stand-in for the paper's PARSEC/SPLASH-2 set).

``SUITE`` is the conflict-free evaluation set used by the performance,
energy and traffic figures; ``RACY_SUITE`` contains the workloads with
genuine region conflicts used by the conflicts-detected table.  Every
build is deterministic in (name, num_threads, seed, scale).
"""

from __future__ import annotations

# importing the generator modules populates the registry
from . import (  # noqa: F401
    alltoall,
    barrier_phases,
    captured,
    compute,
    dataparallel,
    false_sharing,
    irregular,
    lock_contend,
    migratory,
    producer_consumer,
    racy,
    readers_writers,
    reduction,
    task_queue,
)
from ..trace.program import Program
from .base import generate, registered_workloads

#: conflict-free workloads, in figure order
SUITE: tuple[str, ...] = (
    "dataparallel-blackscholes",
    "stencil-ocean",
    "taskqueue-swaptions",
    "readers-writers",
    "pipeline-ferret",
    "lock-counter",
    "migratory-token",
    "false-sharing",
)

#: workloads with true region conflicts (Table "conflicts detected")
RACY_SUITE: tuple[str, ...] = ("racy-writers", "racy-readers")

#: extension workloads: registered and tested, not part of the paper
#: figures (kept out of SUITE so the figure set matches EXPERIMENTS.md)
EXTRA_WORKLOADS: tuple[str, ...] = (
    "irregular-barnes",
    "reduction-fmm",
    "alltoall-radix",
    "compute-water",
)

#: captured real-program workloads (see repro.capture); conflict-free
#: ones first, the deliberately racy detection exercise last
CAPTURED_WORKLOADS: tuple[str, ...] = (
    "capture-histogram",
    "capture-blackscholes",
    "capture-pipeline",
    "capture-workqueue",
    "capture-racy-counter",
)


def build_workload(
    name: str, num_threads: int = 16, seed: int = 1, scale: float = 1.0, **params
) -> Program:
    """Build one named workload (see :func:`repro.synth.base.generate`)."""
    return generate(name, num_threads=num_threads, seed=seed, scale=scale, **params)


def build_suite(
    num_threads: int = 16, seed: int = 1, scale: float = 1.0
) -> list[Program]:
    """Build the full conflict-free suite."""
    return [build_workload(name, num_threads, seed, scale) for name in SUITE]


def all_workload_names() -> list[str]:
    return registered_workloads()
