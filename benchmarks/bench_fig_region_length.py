"""Bench: regenerate the region-length sensitivity figure.

Expected shape (paper): CE's overhead grows with region length (longer
regions overflow the L1's access bits and spill to memory); CE+ and ARC
stay near flat because their metadata stays on chip.
"""


def test_fig_region_length(run_exp):
    (table,) = run_exp("fig_region_length")
    assert table.column("phases") == [1, 2, 4, 8, 16]
    lengths = table.column("mean region len")
    assert lengths == sorted(lengths, reverse=True)
    ce = table.column("ce")
    ceplus = table.column("ce+")
    # CE at the longest regions costs at least what it does at the
    # shortest; CE+ never exceeds CE.
    assert ce[0] >= ce[-1] - 0.02
    assert all(cp <= c + 0.02 for c, cp in zip(ce, ceplus))
