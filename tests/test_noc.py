"""Unit and property tests for the mesh topology and network model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import NocConfig
from repro.common.errors import ConfigError
from repro.noc import DATA, REQ, MeshNetwork, MeshTopology, flits_for_payload


class TestFlits:
    @pytest.mark.parametrize(
        "payload,flit,expected",
        [(0, 16, 1), (1, 16, 2), (16, 16, 2), (64, 16, 5), (8, 8, 2)],
    )
    def test_sizing(self, payload, flit, expected):
        assert flits_for_payload(payload, flit) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            flits_for_payload(-1, 16)


class TestTopology:
    def test_geometry(self):
        topo = MeshTopology(4, 4)
        assert topo.num_tiles == 16
        # 2 directed links per edge; 4x4 mesh has 24 undirected edges
        assert topo.num_links == 48

    def test_coords(self):
        topo = MeshTopology(4, 2)
        assert topo.coords(0) == (0, 0)
        assert topo.coords(5) == (1, 1)
        with pytest.raises(ConfigError):
            topo.coords(8)

    def test_self_route_empty(self):
        topo = MeshTopology(4, 4)
        assert topo.route(5, 5) == ()
        assert topo.hops(5, 5) == 0

    def test_hops_are_manhattan(self):
        topo = MeshTopology(4, 4)
        for src in range(16):
            for dst in range(16):
                sx, sy = topo.coords(src)
                dx, dy = topo.coords(dst)
                assert topo.hops(src, dst) == abs(sx - dx) + abs(sy - dy)

    def test_route_links_are_contiguous(self):
        topo = MeshTopology(4, 4)
        route = topo.route(0, 15)
        tiles = [topo.links[route[0]][0]]
        for link in route:
            src, dst = topo.links[link]
            assert src == tiles[-1]
            tiles.append(dst)
        assert tiles[0] == 0 and tiles[-1] == 15

    def test_xy_routing_goes_x_first(self):
        topo = MeshTopology(4, 4)
        route = topo.route(0, 5)  # (0,0) -> (1,1)
        first_src, first_dst = topo.links[route[0]]
        # first hop changes the x coordinate
        assert topo.coords(first_dst)[0] != topo.coords(first_src)[0]

    def test_bad_dimensions(self):
        with pytest.raises(ConfigError):
            MeshTopology(0, 4)


class TestNetwork:
    def make(self, **kw):
        return MeshNetwork(MeshTopology(4, 4), NocConfig(**kw))

    def test_local_send_is_free(self):
        net = self.make()
        assert net.send(3, 3, 64, DATA, 0) == 0
        assert net.total_flit_hops == 0
        assert net.total_messages == 1

    def test_latency_composition(self):
        net = self.make()
        # 0 -> 15 is 6 hops; ctrl message = 1 flit
        assert net.send(0, 15, 0, REQ, 0) == 6 * 3
        # data = 5 flits: pipelining adds flits-1
        assert net.send(0, 15, 64, DATA, 0) == 6 * 3 + 4

    def test_flit_hop_accounting_by_category(self):
        net = self.make()
        net.send(0, 1, 0, REQ, 0)   # 1 hop x 1 flit
        net.send(0, 1, 64, DATA, 0)  # 1 hop x 5 flits
        assert net.flit_hops_by_category[REQ] == 1
        assert net.flit_hops_by_category[DATA] == 5
        assert net.total_flit_hops == 6

    def test_contention_penalty(self):
        net = self.make(window_cycles=64, saturation_fraction=0.2,
                        max_queue_penalty=40)
        base = net.send(0, 3, 64, DATA, 0)
        for _ in range(20):
            last = net.send(0, 3, 64, DATA, 0)
        assert last > base
        assert net.queue_delay_cycles > 0
        assert net.peak_link_utilization > 0.2

    def test_saturation_counter(self):
        net = self.make(window_cycles=16, saturation_fraction=0.5)
        for _ in range(50):
            net.send(0, 3, 64, DATA, 0)
        assert net.saturated_link_windows > 0

    def test_contention_fades_in_new_window(self):
        net = self.make(window_cycles=64, saturation_fraction=0.2,
                        max_queue_penalty=40)
        for _ in range(30):
            net.send(0, 3, 64, DATA, 0)
        fresh = net.send(0, 3, 64, DATA, 10_000_000)
        assert fresh == 3 * 3 + 4

    def test_link_utilization_view(self):
        net = self.make(window_cycles=100)
        net.send(0, 1, 64, DATA, 0)
        util = net.link_utilization(0)
        assert util.max() == pytest.approx(5 / 100)
        assert net.link_utilization(10_000_000).max() == 0.0

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_send_latency_nonnegative_and_symmetricish(self, src, dst):
        net = self.make()
        latency = net.send(src, dst, 0, REQ, 0)
        assert latency >= 0
        if src != dst:
            assert latency > 0
