"""Cross-validation: static analyzer vs run-time oracle vs detectors.

The analyzer predicts, schedule-free, every region pair that can
conflict in *some* legal schedule.  Any one simulated run realizes one
schedule, so the containment invariants are:

    overlap_conflicts(run)   ⊆  region_conflicts(program)   (every run)
    detector reports (run)   ⊆  region_conflicts(program)   (every run)
    region_conflicts == ∅    ⇒  overlap == ∅ and no reports  (any run)

checked over the whole synth suite and over hypothesis-generated random
programs, for all three detecting protocols.  Keys are the shared
``(line, coreA, regionA, coreB, regionB)`` ConflictKey form.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import conflict_lines, region_conflicts
from repro.common.config import SystemConfig
from repro.core.simulator import Simulator
from repro.synth import RACY_SUITE, SUITE, build_workload
from repro.synth.base import registered_workloads
from repro.trace import Program, TraceBuilder
from repro.verify import ScheduleRecorder, detected_keys, overlap_conflicts

DETECTORS = ("ce", "ce+", "arc")
#: every registered generator, including the ones outside the two suites
ALL_WORKLOADS = tuple(sorted(registered_workloads()))


def run_recorded(proto, program, num_cores=4):
    recorder = ScheduleRecorder()
    sim = Simulator(
        SystemConfig(num_cores=num_cores, protocol=proto), program,
        recorder=recorder,
    )
    result = sim.run()
    return result, recorder


@pytest.fixture(scope="module")
def workloads():
    return {
        name: build_workload(name, num_threads=4, seed=1, scale=0.05)
        for name in ALL_WORKLOADS
    }


@pytest.fixture(scope="module")
def predictions(workloads):
    return {name: region_conflicts(program) for name, program in workloads.items()}


class TestSuiteContainment:
    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    @pytest.mark.parametrize("proto", DETECTORS)
    def test_oracle_and_detector_within_predictions(
        self, name, proto, workloads, predictions
    ):
        program = workloads[name]
        predicted = set(predictions[name])
        result, recorder = run_recorded(proto, program)
        overlap = set(overlap_conflicts(recorder))
        detected = detected_keys(result.stats.conflicts)
        assert overlap <= predicted, (
            f"{name}/{proto}: oracle found conflicts the analyzer "
            f"missed: {sorted(overlap - predicted)[:5]}"
        )
        assert detected <= predicted, (
            f"{name}/{proto}: detector reported conflicts the analyzer "
            f"missed: {sorted(detected - predicted)[:5]}"
        )

    @pytest.mark.parametrize("name", SUITE)
    def test_race_free_workloads_predict_nothing(self, name, predictions):
        assert predictions[name] == {}

    @pytest.mark.parametrize("name", RACY_SUITE)
    def test_racy_workloads_predict_something(self, name, predictions):
        assert predictions[name]

    @pytest.mark.parametrize("name", RACY_SUITE)
    def test_detectors_confirm_predicted_lines(self, name, workloads, predictions):
        """On densely racy workloads the realized schedule manifests the
        predictions: every detected line is predicted, and at least one
        predicted line is actually caught."""
        predicted_lines = conflict_lines(predictions[name])
        caught = set()
        for proto in DETECTORS:
            result, _ = run_recorded(proto, workloads[name])
            caught |= conflict_lines(result.stats.conflicts)
        assert caught
        assert caught <= predicted_lines


# --------------------------------------------------------------------------
# randomized programs
# --------------------------------------------------------------------------

random_ops = st.lists(
    st.tuples(
        st.integers(0, 3),   # 0=read 1=write 2=locked write 3=barrier
        st.integers(0, 7),   # line offset in the shared pool
        st.integers(0, 1),   # shared-lock choice
    ),
    min_size=1,
    max_size=20,
)


def random_program(per_thread_ops):
    """Two threads over a shared 8-line pool with shared locks and one
    shared barrier (arrival counts equalized so episodes complete)."""
    builders = [TraceBuilder() for _ in per_thread_ops]
    arrivals = [0] * len(per_thread_ops)
    for tid, (builder, ops) in enumerate(zip(builders, per_thread_ops)):
        for op, offset, which in ops:
            addr = 0x1000 + offset * 8
            if op == 0:
                builder.read(addr, 8)
            elif op == 1:
                builder.write(addr, 8)
            elif op == 2:
                builder.acquire(50 + which)
                builder.write(addr, 8)
                builder.release(50 + which)
            else:
                arrivals[tid] += 1
                builder.barrier(0)
    most = max(arrivals)
    for tid, builder in enumerate(builders):
        for _ in range(most - arrivals[tid]):
            builder.barrier(0)
    return Program([b.build() for b in builders], name="random")


class TestRandomProgramContainment:
    @given(ops0=random_ops, ops1=random_ops)
    @settings(max_examples=20, deadline=None)
    def test_every_run_within_predictions(self, ops0, ops1):
        program = random_program([ops0, ops1])
        predicted = set(region_conflicts(program))
        for proto in DETECTORS:
            result, recorder = run_recorded(proto, program, num_cores=2)
            overlap = set(overlap_conflicts(recorder))
            detected = detected_keys(result.stats.conflicts)
            assert overlap <= predicted, proto
            assert detected <= predicted, proto
            if not predicted:
                assert not overlap and not detected, proto
