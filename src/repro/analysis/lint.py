"""Rule-based static lint over traces and system configurations.

Every rule has a stable id, a severity and a fix hint, so findings are
machine-consumable (``repro-analyze --format json``) and the harness can
gate runs on them (``repro.harness.run --analyze``).  The rules catch
the two classes of problems that waste simulation time:

* traces that will deadlock or mislead the detectors (lock-order
  inversion cycles, barrier misuse, accesses straddling the metadata
  granularity);
* configuration combinations the simulator accepts but silently
  ignores or degrades on (ARC knobs under MESI-family protocols, AIM
  sizing under protocols that never touch it, idle cores).

Severities: ``error`` — the run will fail or its results are
meaningless; ``warning`` — the run works but likely does not measure
what was intended; ``info`` — worth knowing, harmless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.config import AimConfig, ProtocolKind, SystemConfig
from ..trace.events import ACQUIRE, BARRIER, RELEASE, WRITE
from ..trace.program import Program
from .hb import BarrierStallError, build_hb

SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Rule:
    """One lint rule's identity and documentation."""

    rule_id: str
    severity: str
    title: str
    hint: str


@dataclass(frozen=True)
class Finding:
    """One lint finding: a rule firing on a subject."""

    rule_id: str
    severity: str
    subject: str
    message: str
    hint: str

    def render(self) -> str:
        return f"[{self.rule_id}:{self.severity}] {self.subject}: {self.message}"


RULES: dict[str, Rule] = {}


def _rule(rule_id: str, severity: str, title: str, hint: str) -> Rule:
    rule = Rule(rule_id, severity, title, hint)
    RULES[rule_id] = rule
    return rule


L101 = _rule(
    "L101", "warning", "lock-order inversion",
    "impose one global acquisition order on these locks",
)
L102 = _rule(
    "L102", "error", "acquire of a lock already held",
    "drop the inner acquire, or use a different lock (self-deadlock)",
)
L103 = _rule(
    "L103", "error", "release of a lock not held",
    "match every release with a preceding acquire on the same thread",
)
L104 = _rule(
    "L104", "error", "trace ends holding locks",
    "release all locks before the thread exits",
)
B201 = _rule(
    "B201", "error", "barrier reached while holding a lock",
    "release locks before the barrier (a holder waiting at a barrier "
    "deadlocks contenders)",
)
B202 = _rule(
    "B202", "error", "unequal barrier episode counts",
    "every participant must arrive at the barrier the same number of times",
)
B203 = _rule(
    "B203", "error", "barrier episodes can never all complete",
    "make all threads pass their shared barriers in the same order",
)
B204 = _rule(
    "B204", "warning", "barrier with a single participant",
    "a one-thread barrier orders nothing; remove it or widen participation",
)
A301 = _rule(
    "A301", "warning", "access straddles the metadata granularity",
    "align shared accesses to the metadata block size, or raise "
    "metadata_bytes — straddling accesses double the spill traffic they cost",
)
C401 = _rule(
    "C401", "warning", "ARC tuning flags ignored by this protocol",
    "arc_lazy_clear / arc_write_through only affect protocol='arc'",
)
C402 = _rule(
    "C402", "info", "AIM configured but never accessed",
    "only CE+ reads the AIM; drop the custom AimConfig or switch protocols",
)
C403 = _rule(
    "C403", "warning", "halt_on_conflict under a non-detecting protocol",
    "MESI never raises region conflict exceptions; use ce/ce+/arc",
)
C404 = _rule(
    "C404", "warning", "use_owned_state ignored by ARC",
    "the Owned state exists only in the MESI family; drop the flag for arc",
)
C405 = _rule(
    "C405", "warning", "directory sizing ignored by ARC",
    "ARC keeps no sharer directory; directory_entries_per_bank has no effect",
)
C406 = _rule(
    "C406", "info", "idle cores",
    "the program leaves cores idle; size num_cores to the thread count "
    "for comparable per-core figures",
)
C407 = _rule(
    "C407", "error", "more threads than cores",
    "the simulator refuses programs with more threads than cores; "
    "raise num_cores or rebuild the workload with fewer threads",
)
CAP501 = _rule(
    "CAP501", "warning", "serialized capture: one lock guards all sharing",
    "every cross-thread line access holds a common lock, so detectors "
    "can never fire; narrow the lock scope or split the lock if the "
    "capture was meant to exercise concurrent sharing",
)
CAP502 = _rule(
    "CAP502", "info", "no cross-thread sharing captured",
    "threads touch disjoint lines; conflict detection is trivially "
    "clean — raise the thread count or shrink per-thread partitions "
    "if sharing was intended",
)
CAP503 = _rule(
    "CAP503", "info", "all shared traffic on a single line",
    "cross-thread sharing collapses onto one cache line (contention "
    "microbenchmark shape); spread shared state across lines for "
    "protocol-realistic traffic",
)


def _finding(rule: Rule, subject: str, message: str) -> Finding:
    return Finding(rule.rule_id, rule.severity, subject, message, rule.hint)


# --------------------------------------------------------------------------
# trace rules
# --------------------------------------------------------------------------


def _lock_discipline(program: Program) -> tuple[list[Finding], dict[tuple[int, int], list[int]]]:
    """Walk each thread's sync events once: discipline findings plus the
    held-before edge set for the lock-order graph.

    Edge ``(a, b)`` means some thread acquired ``b`` while holding
    ``a``; the witness list records the threads."""
    findings: list[Finding] = []
    edges: dict[tuple[int, int], list[int]] = {}
    for tid, trace in enumerate(program.traces):
        held: list[int] = []
        sync = trace.kinds >= ACQUIRE
        kinds = trace.kinds[sync].tolist()
        ids = trace.sync_ids[sync].tolist()
        for kind, sid in zip(kinds, ids):
            if kind == ACQUIRE:
                if sid in held:
                    findings.append(_finding(
                        L102, f"thread {tid}",
                        f"acquire of lock {sid} while already holding it",
                    ))
                for outer in held:
                    if outer != sid:
                        edges.setdefault((outer, sid), []).append(tid)
                held.append(sid)
            elif kind == RELEASE:
                if sid in held:
                    held.remove(sid)
                else:
                    findings.append(_finding(
                        L103, f"thread {tid}", f"release of lock {sid} not held"
                    ))
            elif kind == BARRIER and held:
                findings.append(_finding(
                    B201, f"thread {tid}",
                    f"barrier {sid} reached while holding locks {sorted(held)}",
                ))
        if held:
            findings.append(_finding(
                L104, f"thread {tid}", f"trace ends holding locks {sorted(held)}"
            ))
    return findings, edges


def _lock_order_cycles(edges: dict[tuple[int, int], list[int]]) -> list[Finding]:
    """Cycles in the held-before graph (potential ABBA deadlocks)."""
    graph: dict[int, set[int]] = {}
    for (a, b), _tids in edges.items():
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    findings = []
    seen_cycles: set[frozenset[int]] = set()
    # Iterative DFS with an explicit path to recover the cycle members.
    for root in sorted(graph):
        stack: list[tuple[int, list[int]]] = [(root, [root])]
        visited_from_root: set[int] = set()
        while stack:
            node, path = stack.pop()
            for succ in sorted(graph[node]):
                if succ == root:
                    cycle = frozenset(path)
                    if cycle not in seen_cycles:
                        seen_cycles.add(cycle)
                        threads = sorted({
                            t
                            for i, a in enumerate(path)
                            for t in edges.get((a, path[(i + 1) % len(path)]), [])
                        })
                        findings.append(_finding(
                            L101,
                            "locks " + " -> ".join(str(p) for p in path + [root]),
                            f"acquisition-order cycle between threads {threads}",
                        ))
                elif succ not in path and succ not in visited_from_root:
                    visited_from_root.add(succ)
                    stack.append((succ, path + [succ]))
    return findings


def _barrier_rules(program: Program) -> list[Finding]:
    findings = []
    counts: dict[int, dict[int, int]] = {}
    for tid, trace in enumerate(program.traces):
        mask = trace.kinds == BARRIER
        ids, per = np.unique(trace.sync_ids[mask], return_counts=True)
        for bid, count in zip(ids.tolist(), per.tolist()):
            counts.setdefault(bid, {})[tid] = count
    mismatched = False
    for bid in sorted(counts):
        per_thread = counts[bid]
        if len(per_thread) == 1:
            (tid,) = per_thread
            findings.append(_finding(
                B204, f"barrier {bid}", f"only thread {tid} ever arrives"
            ))
        if len(set(per_thread.values())) > 1:
            mismatched = True
            findings.append(_finding(
                B202, f"barrier {bid}",
                f"episode counts differ across threads: "
                f"{dict(sorted(per_thread.items()))}",
            ))
    if not mismatched and counts:
        # Episode counts agree; the remaining failure mode is ordering
        # (threads passing shared barriers in incompatible orders).
        try:
            build_hb(program)
        except BarrierStallError as stall:
            waits = ", ".join(
                f"thread {t} at barrier {b}"
                for t, b in sorted(stall.stalled.items())
            )
            findings.append(_finding(
                B203, "barriers", f"guaranteed deadlock: {waits}"
            ))
    return findings


def _granularity_rule(program: Program, cfg: SystemConfig) -> list[Finding]:
    granule = cfg.metadata_bytes
    if granule >= cfg.line_size:
        return []
    findings = []
    for tid, trace in enumerate(program.traces):
        access = trace.kinds <= WRITE
        addrs = trace.addrs[access].astype(np.int64)
        sizes = trace.sizes[access].astype(np.int64)
        straddling = (addrs % granule) + sizes > granule
        count = int(np.count_nonzero(straddling))
        if count:
            first = int(np.argmax(straddling))
            findings.append(_finding(
                A301, f"thread {tid}",
                f"{count} access(es) straddle the {granule}B metadata "
                f"granule (first: {addrs[first]:#x}+{sizes[first]})",
            ))
    return findings


# --------------------------------------------------------------------------
# capture-shape rules (CAP5xx)
# --------------------------------------------------------------------------


def _capture_rules(program: Program, line_size: int = 64) -> list[Finding]:
    """Shape checks for runtime-captured programs.

    Gated on the ``capture`` name prefix: synthetic generators build
    sharing patterns on purpose, but a *capture* with degenerate
    sharing usually means the instrumented program (or its scale) does
    not exercise what the capture was for.
    """
    if not program.name.startswith("capture"):
        return []
    shift = np.uint64(line_size.bit_length() - 1)
    mask = ~np.uint64(line_size - 1)
    touched: dict[int, set[int]] = {}
    for tid, trace in enumerate(program.traces):
        access = trace.kinds <= WRITE
        lines = np.unique((trace.addrs[access] >> shift) << shift)
        for line in lines.tolist():
            touched.setdefault(int(line), set()).add(tid)
    shared = {line for line, tids in touched.items() if len(tids) > 1}
    if not shared:
        return [_finding(
            CAP502, program.name,
            f"{len(touched)} line(s) touched, none by more than one thread",
        )]
    findings = []
    if len(shared) == 1:
        (line,) = shared
        findings.append(_finding(
            CAP503, program.name,
            f"the only cross-thread line is {line:#x}, touched by threads "
            f"{sorted(touched[line])}",
        ))
    shared_arr = np.array(sorted(shared), dtype=np.uint64)
    common: set[int] | None = None
    for trace in program.traces:
        kinds = trace.kinds
        lines = trace.addrs & mask
        interesting = (kinds >= ACQUIRE) | (
            (kinds <= WRITE) & np.isin(lines, shared_arr)
        )
        held: set[int] = set()
        for i in np.flatnonzero(interesting).tolist():
            kind = int(kinds[i])
            if kind == ACQUIRE:
                held.add(int(trace.sync_ids[i]))
            elif kind == RELEASE:
                held.discard(int(trace.sync_ids[i]))
            elif kind <= WRITE:
                common = set(held) if common is None else (common & held)
                if not common:
                    return findings
    if common:
        findings.append(_finding(
            CAP501, program.name,
            f"every access to the {len(shared)} shared line(s) holds "
            f"lock(s) {sorted(common)}",
        ))
    return findings


# --------------------------------------------------------------------------
# config rules
# --------------------------------------------------------------------------


def lint_config(cfg: SystemConfig, program: Program | None = None) -> list[Finding]:
    """Config-combination rules (C4xx)."""
    findings = []
    proto = cfg.protocol
    if proto is not ProtocolKind.ARC and (
        not cfg.arc_lazy_clear or cfg.arc_write_through
    ):
        findings.append(_finding(
            C401, "config",
            f"arc_lazy_clear={cfg.arc_lazy_clear}, "
            f"arc_write_through={cfg.arc_write_through} under "
            f"protocol={proto.value!r}",
        ))
    if proto in (ProtocolKind.MESI, ProtocolKind.CE) and cfg.aim != AimConfig():
        findings.append(_finding(
            C402, "config",
            f"custom AIM ({cfg.aim.describe()}) under protocol={proto.value!r}",
        ))
    if cfg.halt_on_conflict and not proto.detects_conflicts:
        findings.append(_finding(
            C403, "config", "halt_on_conflict=True under protocol='mesi'"
        ))
    if proto is ProtocolKind.ARC and cfg.use_owned_state:
        findings.append(_finding(C404, "config", "use_owned_state=True under ARC"))
    if proto is ProtocolKind.ARC and cfg.directory_entries_per_bank is not None:
        findings.append(_finding(
            C405, "config",
            f"directory_entries_per_bank={cfg.directory_entries_per_bank} under ARC",
        ))
    if program is not None:
        if program.num_threads > cfg.num_cores:
            findings.append(_finding(
                C407, "config",
                f"{program.num_threads} threads on {cfg.num_cores} cores",
            ))
        elif program.num_threads < cfg.num_cores:
            findings.append(_finding(
                C406, "config",
                f"{cfg.num_cores - program.num_threads} of {cfg.num_cores} "
                f"cores idle",
            ))
    return findings


def lint_program(
    program: Program, cfg: SystemConfig | None = None
) -> list[Finding]:
    """Run every applicable rule; returns findings sorted by severity
    (errors first), then rule id."""
    findings, edges = _lock_discipline(program)
    findings += _lock_order_cycles(edges)
    findings += _barrier_rules(program)
    findings += _capture_rules(
        program, cfg.line_size if cfg is not None else 64
    )
    if cfg is not None:
        findings += _granularity_rule(program, cfg)
        findings += lint_config(cfg, program)
    findings.sort(key=lambda f: (-SEVERITIES.index(f.severity), f.rule_id, f.subject))
    return findings


def max_severity(findings: list[Finding]) -> str | None:
    """Highest severity present, or None for a clean report."""
    if not findings:
        return None
    return max(findings, key=lambda f: SEVERITIES.index(f.severity)).severity
