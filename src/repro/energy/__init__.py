"""Energy model: per-event constants and end-of-run energy computation."""

from .model import EnergyBreakdown, compute_energy
from .params import EnergyParams

__all__ = ["EnergyBreakdown", "EnergyParams", "compute_energy"]
