"""Protocol-level tests for the MESI baseline.

These drive the protocol object directly (no trace engine) to pin down
state-machine behaviour: E/S/M transitions, invalidations, forwards,
upgrades, writebacks and directory bookkeeping.
"""

import pytest

from repro.common.config import CacheConfig, SystemConfig
from repro.core.machine import Machine
from repro.protocols.base import E, M, S
from repro.protocols.mesi import MesiProtocol
from repro.trace.events import RELEASE


def make(num_cores=4, **cfg_kw):
    cfg = SystemConfig(num_cores=num_cores, **cfg_kw)
    machine = Machine(cfg)
    return machine, MesiProtocol(machine)


LINE = 0x4000  # maps to some bank; any line works


class TestStates:
    def test_read_miss_installs_exclusive(self):
        _, proto = make()
        proto.access(0, LINE, 8, False, 0)
        assert proto.l1[0].get(LINE).state == E
        assert proto.directory[LINE].owner == 0

    def test_second_reader_downgrades_to_shared(self):
        _, proto = make()
        proto.access(0, LINE, 8, False, 0)
        proto.access(1, LINE, 8, False, 10)
        assert proto.l1[0].get(LINE).state == S
        assert proto.l1[1].get(LINE).state == S
        entry = proto.directory[LINE]
        assert entry.owner == -1
        assert sorted(entry.sharer_list()) == [0, 1]

    def test_write_miss_installs_modified(self):
        _, proto = make()
        proto.access(0, LINE, 8, True, 0)
        assert proto.l1[0].get(LINE).state == M
        assert proto.directory[LINE].owner == 0

    def test_write_hit_on_exclusive_is_silent(self):
        machine, proto = make()
        proto.access(0, LINE, 8, False, 0)
        msgs_before = machine.net.total_messages
        proto.access(0, LINE, 8, True, 10)
        assert proto.l1[0].get(LINE).state == M
        assert machine.net.total_messages == msgs_before

    def test_upgrade_invalidates_sharers(self):
        machine, proto = make()
        proto.access(0, LINE, 8, False, 0)
        proto.access(1, LINE, 8, False, 10)
        proto.access(0, LINE, 8, True, 20)  # S -> M upgrade
        assert proto.l1[0].get(LINE).state == M
        assert proto.l1[1].get(LINE) is None
        assert machine.stats.upgrades == 1
        assert machine.stats.invalidations_sent == 1
        entry = proto.directory[LINE]
        assert entry.owner == 0 and entry.sharers == 0

    def test_write_miss_invalidates_all_sharers(self):
        _, proto = make()
        for core in (0, 1, 2):
            proto.access(core, LINE, 8, False, core * 10)
        proto.access(3, LINE, 8, True, 100)
        for core in (0, 1, 2):
            assert proto.l1[core].get(LINE) is None
        assert proto.l1[3].get(LINE).state == M

    def test_write_miss_fetches_from_owner(self):
        machine, proto = make()
        proto.access(0, LINE, 8, True, 0)
        proto.access(1, LINE, 8, True, 10)
        assert proto.l1[0].get(LINE) is None
        assert proto.l1[1].get(LINE).state == M
        assert machine.stats.forwards == 1
        assert proto.directory[LINE].owner == 1

    def test_read_from_modified_owner_downgrades(self):
        machine, proto = make()
        proto.access(0, LINE, 8, True, 0)
        proto.access(1, LINE, 8, False, 10)
        assert proto.l1[0].get(LINE).state == S
        assert proto.l1[1].get(LINE).state == S
        assert machine.stats.forwards == 1
        # the downgrade pushed the dirty line into the LLC
        bank = machine.home_bank(LINE)
        assert machine.llc_banks[bank].contains(LINE)


class TestHitsAndLatency:
    def test_hit_is_l1_latency(self):
        _, proto = make()
        proto.access(0, LINE, 8, False, 0)
        latency = proto.access(0, LINE, 8, False, 10)
        assert latency == proto.cfg.l1.hit_latency

    def test_miss_is_slower_than_hit(self):
        _, proto = make()
        miss = proto.access(0, LINE, 8, False, 0)
        hit = proto.access(0, LINE, 8, False, 10)
        assert miss > hit

    def test_llc_hit_faster_than_dram(self):
        machine, proto = make()
        cold = proto.access(0, LINE, 8, False, 0)  # DRAM fetch
        proto.l1[0].invalidate(LINE)
        entry = proto.directory[LINE]
        entry.owner = -1
        entry.sharers = 0
        warm = proto.access(0, LINE, 8, False, 10)  # LLC hit
        assert warm < cold

    def test_hit_miss_counters(self):
        machine, proto = make()
        proto.access(0, LINE, 8, False, 0)
        proto.access(0, LINE, 8, False, 1)
        assert machine.stats.l1_misses == 1
        assert machine.stats.l1_hits == 1


class TestEvictions:
    def tiny_l1(self):
        # 2 sets x 2 ways of 64B lines = 256B L1
        return make(l1=CacheConfig(size=256, assoc=2, line_size=64))

    def test_capacity_eviction(self):
        machine, proto = self.tiny_l1()
        # 3 lines mapping to the same set (stride = 2 lines)
        lines = [0x0, 0x80, 0x100]
        for i, line in enumerate(lines):
            proto.access(0, line, 8, False, i * 10)
        assert machine.stats.l1_evictions == 1
        assert proto.l1[0].get(lines[0], touch=False) is None

    def test_dirty_eviction_writes_back(self):
        machine, proto = self.tiny_l1()
        lines = [0x0, 0x80, 0x100]
        proto.access(0, lines[0], 8, True, 0)
        proto.access(0, lines[1], 8, False, 10)
        proto.access(0, lines[2], 8, False, 20)
        assert machine.stats.l1_writebacks == 1
        bank = machine.home_bank(lines[0])
        assert machine.llc_banks[bank].contains(lines[0])
        assert proto.directory[lines[0]].owner == -1

    def test_clean_eviction_updates_directory(self):
        machine, proto = self.tiny_l1()
        lines = [0x0, 0x80, 0x100]
        for i, line in enumerate(lines):
            proto.access(0, line, 8, False, i * 10)
        entry = proto.directory[lines[0]]
        assert entry.owner == -1 and entry.sharers == 0
        assert machine.stats.l1_writebacks == 0


class TestRegionBoundary:
    def test_boundary_advances_region(self):
        _, proto = make()
        assert proto.region[0] == 0
        proto.region_boundary(0, 100, RELEASE)
        assert proto.region[0] == 1
        assert proto.region_start[0] == 100

    def test_mesi_never_reports_conflicts(self):
        machine, proto = make()
        proto.access(0, LINE, 8, True, 0)
        proto.access(1, LINE, 8, True, 1)
        proto.access(0, LINE, 8, False, 2)
        assert machine.stats.conflicts == []
