"""Unit tests for the energy model."""

import pytest

from repro.common.errors import ConfigError
from repro.energy import EnergyParams, compute_energy


def energy(**kw):
    defaults = dict(
        num_cores=16,
        with_aim=False,
        cycles=0,
        l1_accesses=0,
        llc_accesses=0,
        aim_accesses=0,
        metadata_ops=0,
        dram_bytes=0,
        flit_hops=0,
    )
    defaults.update(kw)
    return compute_energy(EnergyParams(), **defaults)


class TestEnergyParams:
    def test_negative_constant_rejected(self):
        with pytest.raises(ConfigError):
            EnergyParams(l1_access_nj=-1)

    def test_zero_clock_rejected(self):
        with pytest.raises(ConfigError):
            EnergyParams(clock_ghz=0)

    def test_static_power_scales_with_cores(self):
        params = EnergyParams()
        assert params.static_nj_per_cycle(32, False) == pytest.approx(
            2 * params.static_nj_per_cycle(16, False)
        )

    def test_aim_leakage_only_when_present(self):
        params = EnergyParams()
        with_aim = params.static_nj_per_cycle(16, True)
        without = params.static_nj_per_cycle(16, False)
        assert with_aim > without


class TestComputeEnergy:
    def test_zero_counts_zero_energy(self):
        assert energy().total_nj == 0.0

    def test_components_are_linear(self):
        e1 = energy(l1_accesses=100)
        e2 = energy(l1_accesses=200)
        assert e2.l1_nj == pytest.approx(2 * e1.l1_nj)

    def test_dram_per_byte(self):
        e = energy(dram_bytes=64)
        assert e.dram_nj == pytest.approx(64 * EnergyParams().dram_nj_per_byte)

    def test_total_is_sum(self):
        e = energy(
            cycles=1000,
            l1_accesses=10,
            llc_accesses=5,
            aim_accesses=2,
            metadata_ops=7,
            dram_bytes=64,
            flit_hops=30,
        )
        parts = (
            e.l1_nj + e.llc_nj + e.aim_nj + e.metadata_nj + e.dram_nj
            + e.noc_nj + e.static_nj
        )
        assert e.total_nj == pytest.approx(parts)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            energy(cycles=-1)

    def test_as_dict(self):
        d = energy(l1_accesses=1).as_dict()
        assert "l1_nj" in d and "total_nj" in d

    def test_normalized_to(self):
        base = energy(cycles=1000, l1_accesses=100)
        other = energy(cycles=2000, l1_accesses=100)
        norm = other.normalized_to(base)
        assert norm["total"] > 1.0
        assert norm["l1_nj"] == pytest.approx(base.l1_nj / base.total_nj)

    def test_normalized_to_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            energy(l1_accesses=1).normalized_to(energy())
