"""Shared infrastructure: configuration, errors, units, bit/byte masks, RNG."""

from .config import (
    AimConfig,
    CacheConfig,
    DramConfig,
    NocConfig,
    ProtocolKind,
    SystemConfig,
)
from .errors import (
    ConfigError,
    ConflictRecord,
    RegionConflictError,
    ReproError,
    SimulationError,
    TraceError,
)

__all__ = [
    "AimConfig",
    "CacheConfig",
    "ConfigError",
    "ConflictRecord",
    "DramConfig",
    "NocConfig",
    "ProtocolKind",
    "RegionConflictError",
    "ReproError",
    "SimulationError",
    "SystemConfig",
    "TraceError",
]
