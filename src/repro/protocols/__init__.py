"""Coherence + conflict-detection protocols: MESI, CE, CE+, ARC."""

from typing import TYPE_CHECKING

from ..common.config import ProtocolKind
from ..common.errors import ConfigError
from .arc import ArcProtocol
from .base import CoherenceProtocol, DirEntry, MesiLine
from .ce import CeProtocol
from .ceplus import CePlusProtocol
from .mesi import MesiProtocol
from .metadata import AccessInfoTable, SpilledEntry

if TYPE_CHECKING:
    from ..core.machine import Machine

PROTOCOL_CLASSES: dict[ProtocolKind, type[CoherenceProtocol]] = {
    ProtocolKind.MESI: MesiProtocol,
    ProtocolKind.CE: CeProtocol,
    ProtocolKind.CEPLUS: CePlusProtocol,
    ProtocolKind.ARC: ArcProtocol,
}


def make_protocol(machine: "Machine") -> CoherenceProtocol:
    """Instantiate the protocol selected by the machine's configuration."""
    kind = machine.cfg.protocol
    cls = PROTOCOL_CLASSES.get(kind)
    if cls is None:
        raise ConfigError(f"unknown protocol {kind!r}")
    return cls(machine)


__all__ = [
    "AccessInfoTable",
    "ArcProtocol",
    "CePlusProtocol",
    "CeProtocol",
    "CoherenceProtocol",
    "DirEntry",
    "MesiLine",
    "MesiProtocol",
    "PROTOCOL_CLASSES",
    "SpilledEntry",
    "make_protocol",
]
