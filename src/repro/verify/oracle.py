"""Ground-truth region conflict oracles.

Given a :class:`~repro.verify.recorder.ScheduleRecorder` log of one
run, the oracles compute — by brute force, with no protocol machinery —
which region pairs conflicted under two definitions:

* :func:`overlap_conflicts` — **region-overlap** semantics: two accesses
  to overlapping bytes, at least one a write, whose regions' time
  intervals intersect.  This is the semantics ARC enforces; every pair
  it returns is a genuine data race.

* :func:`ce_conflicts` — **CE (ISCA 2010)** semantics: additionally the
  later access must execute *while the earlier access's region is still
  open* (``t2 < end(r1)``).  This is strictly a subset of the overlap
  definition.

The verification property the test suite checks on recorded runs:

    ce_conflicts  ⊆  detector's reports  ⊆  overlap_conflicts      (ARC)
    detector's reports  ⊆  overlap_conflicts                        (CE, CE+)
    overlap_conflicts == ∅  ⇒  no detector reports anything

(CE's own reports can be a proper subset of ``ce_conflicts`` only by
scheduling skew of a few cycles; on programs with clean timing they
match.)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from .recorder import RecordedAccess, ScheduleRecorder

#: a conflicting region pair, normalized: (line, coreA, regionA, coreB, regionB)
#: with (coreA, regionA) < (coreB, regionB)
ConflictKey = tuple[int, int, int, int, int]


@dataclass(frozen=True)
class OracleConflict:
    line: int
    first_core: int
    first_region: int
    second_core: int
    second_region: int
    byte_mask: int

    @property
    def key(self) -> ConflictKey:
        return (
            self.line,
            self.first_core,
            self.first_region,
            self.second_core,
            self.second_region,
        )


def _conflicting_bytes(a: RecordedAccess, b: RecordedAccess) -> int:
    if not (a.is_write or b.is_write):
        return 0
    return a.mask & b.mask


def _pairs_by_line(recorder: ScheduleRecorder):
    by_line: dict[int, list[RecordedAccess]] = defaultdict(list)
    for access in recorder.accesses:
        by_line[access.line].append(access)
    return by_line


def _normalize(
    line: int, a: RecordedAccess, b: RecordedAccess, mask: int
) -> OracleConflict:
    first, second = ((a, b) if (a.core, a.region) <= (b.core, b.region) else (b, a))
    return OracleConflict(
        line=line,
        first_core=first.core,
        first_region=first.region,
        second_core=second.core,
        second_region=second.region,
        byte_mask=mask,
    )


def overlap_conflicts(recorder: ScheduleRecorder) -> dict[ConflictKey, OracleConflict]:
    """All conflicting region pairs under region-overlap semantics."""
    found: dict[ConflictKey, OracleConflict] = {}
    for line, accesses in _pairs_by_line(recorder).items():
        for i, a in enumerate(accesses):
            interval_a = recorder.interval(a.core, a.region)
            for b in accesses[i + 1:]:
                if a.core == b.core:
                    continue
                mask = _conflicting_bytes(a, b)
                if not mask:
                    continue
                if not interval_a.overlaps(recorder.interval(b.core, b.region)):
                    continue
                conflict = _normalize(line, a, b, mask)
                existing = found.get(conflict.key)
                if existing is None:
                    found[conflict.key] = conflict
                else:
                    found[conflict.key] = OracleConflict(
                        **{**existing.__dict__, "byte_mask": existing.byte_mask | mask}
                    )
    return found


def ce_conflicts(
    recorder: ScheduleRecorder, margin: int = 0
) -> dict[ConflictKey, OracleConflict]:
    """Conflicting pairs under CE's second-access-during-first-region rule.

    ``margin`` excludes *boundary-epsilon* pairs: the engine serializes
    events, so a region end and a conflicting access whose nominal
    clocks land within a few tens of cycles of each other may execute in
    either order — the protocols legitimately resolve such photo-finish
    pairs as non-overlapping while the recorded timestamps say otherwise
    by a hair.  Soundness properties should pass a margin of roughly
    ``2 * SYNC_OP_CYCLES``; the default of 0 is the exact textbook
    definition.
    """
    found: dict[ConflictKey, OracleConflict] = {}
    for line, accesses in _pairs_by_line(recorder).items():
        for i, a in enumerate(accesses):
            for b in accesses[i + 1:]:
                if a.core == b.core:
                    continue
                mask = _conflicting_bytes(a, b)
                if not mask:
                    continue
                earlier, later = (a, b) if a.cycle <= b.cycle else (b, a)
                earlier_end = recorder.interval(earlier.core, earlier.region).end
                if earlier_end is not None and later.cycle >= earlier_end - margin:
                    continue  # earlier region closed (or photo finish)
                conflict = _normalize(line, a, b, mask)
                found.setdefault(conflict.key, conflict)
    return found


def expected_conflicts(
    recorder: ScheduleRecorder, protocol
) -> tuple[set[ConflictKey], set[ConflictKey]]:
    """``(must_detect, may_detect)`` bounds for one exact schedule.

    This is the model checker's per-interleaving ground truth, usable
    whenever recorded timing is exact (the checker assigns cycles by
    global step index, so there is no photo-finish skew and no margin).
    Every key in ``must_detect`` that goes unreported is a completeness
    violation; every reported key outside ``may_detect`` is a soundness
    violation.

    * MESI detects nothing: both bounds empty.
    * CE / CE+ detect *exactly* the second-access-during-first-region
      subset — eager checks fire at the moment of the second access
      (coherence action, home metadata check, or the in-cache remote
      bits on a silent hit), so the bounds coincide.
    * ARC is lazy: it must catch everything CE would (registration and
      delta flushes are checked no later than region end / finalize)
      and may additionally report any region-overlap conflict, but
      cannot promise *all* of them — a line written privately in a
      region that ends before the second core's first touch loses its
      masks by design (private lines never register), and such pairs
      are region-serializable anyway.  docs/MODELCHECK.md shows the
      three-step counterexample.
    """
    from ..common.config import ProtocolKind

    kind = ProtocolKind(protocol) if not isinstance(protocol, ProtocolKind) else protocol
    if kind is ProtocolKind.MESI:
        return set(), set()
    if kind is ProtocolKind.ARC:
        return set(ce_conflicts(recorder)), set(overlap_conflicts(recorder))
    exact = set(ce_conflicts(recorder))
    return exact, exact


def detected_keys(conflicts) -> set[ConflictKey]:
    """Normalize a detector's ConflictRecords to oracle keys."""
    keys: set[ConflictKey] = set()
    for record in conflicts:
        a = (record.first_core, record.first_region)
        b = (record.second_core, record.second_region)
        first, second = (a, b) if a <= b else (b, a)
        keys.add((record.line_addr, first[0], first[1], second[0], second[1]))
    return keys
