"""Crash-recovery checkpoints for interrupted sweeps.

A :class:`Checkpoint` is an append-only JSONL journal the executor
updates as each simulation point settles: one line per point with its
key, final status (``hit``/``miss``/``computed``/``retried``/``timeout``/
``failed``), attempt count and timing.  Appends happen in *completion*
order — the journal is a recovery artifact, not a diffable output, and
the diffable outputs (tables, manifest entries) stay in submission
order regardless.

Recovery semantics on ``--resume``:

* Points that *completed* are already served by the content-addressed
  result cache — the journal just lets the harness report how much of
  the interrupted run survives.
* Points that *failed terminally* (timeout, crash or error after the
  full retry budget) are replayed from the journal when ``keep_going``
  is set, so a resumed sweep does not pay the timeout/retry budget for
  a known-bad point all over again.  Without ``keep_going`` they are
  re-attempted — a resume is an explicit request to try again.

Writes are line-buffered appends from a single harness process; a crash
mid-line leaves at most one truncated record, which :meth:`load` skips.
"""

from __future__ import annotations

import json
from pathlib import Path

#: statuses that mean "this point produced a result"
COMPLETED_STATUSES = frozenset({"hit", "miss", "computed", "retried"})

#: statuses that mean "this point terminally failed"
FAILED_STATUSES = frozenset({"timeout", "failed"})


class Checkpoint:
    """Append-only per-point progress journal for one sweep."""

    def __init__(self, path: str | Path, *, resume: bool = False):
        self.path = Path(path)
        self.entries: dict[str, dict] = {}
        self.resumed_from = 0
        if resume:
            self.entries = self._load(self.path)
            self.resumed_from = len(self.entries)
        else:
            # a fresh run owns the journal: start it empty
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")

    @staticmethod
    def _load(path: Path) -> dict[str, dict]:
        entries: dict[str, dict] = {}
        try:
            text = path.read_text()
        except OSError:
            return entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                record["status"]
            except (ValueError, KeyError, TypeError):
                continue  # truncated tail from an interrupted append
            entries[key] = record
        return entries

    # -- recording -------------------------------------------------------

    def record(
        self,
        key: str,
        status: str,
        workload: str,
        protocol: str,
        seconds: float,
        attempts: int = 1,
        error: str | None = None,
    ) -> None:
        record = {
            "key": key,
            "status": status,
            "workload": workload,
            "protocol": protocol,
            "seconds": round(seconds, 6),
            "attempts": attempts,
        }
        if error is not None:
            record["error"] = error
        self.entries[key] = record
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    # -- queries ---------------------------------------------------------

    def status(self, key: str) -> str | None:
        record = self.entries.get(key)
        return None if record is None else record.get("status")

    def completed(self, key: str) -> bool:
        return self.status(key) in COMPLETED_STATUSES

    def failed(self, key: str) -> dict | None:
        """The journal record of a terminally failed point, or None."""
        record = self.entries.get(key)
        if record is not None and record.get("status") in FAILED_STATUSES:
            return record
        return None

    def summary(self) -> dict:
        statuses = [r.get("status") for r in self.entries.values()]
        return {
            "path": str(self.path),
            "points": len(self.entries),
            "completed": sum(s in COMPLETED_STATUSES for s in statuses),
            "failed": sum(s in FAILED_STATUSES for s in statuses),
            "resumed_from": self.resumed_from,
        }
