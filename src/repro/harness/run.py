"""Command-line experiment runner.

Usage::

    python -m repro.harness.run --list
    python -m repro.harness.run fig_perf_16
    python -m repro.harness.run all --preset bench
    python -m repro.harness.run all --preset quick --jobs 4
    python -m repro.harness.run fig_aim_sensitivity --threads 16 --scale 1.0

``--jobs N`` fans simulation points out across N worker processes
(``--jobs auto`` clamps to the CPU count); results reassemble
deterministically, so stdout is byte-identical to a serial run.  An
on-disk result cache (``~/.cache/repro`` unless
``--cache-dir``/``$REPRO_CACHE_DIR`` says otherwise) makes repeated
invocations skip identical simulations; ``--no-cache`` disables it.
Every invocation writes ``manifest.json`` into the cache directory,
recording each point's key, timing and per-point status.  Timings go to
stderr so stdout stays a stable, diffable artifact.

Fault tolerance (see docs/RESILIENCE.md): ``--point-timeout`` bounds
each point's wall clock, ``--retries`` absorbs transient worker
crashes, ``--keep-going`` turns terminal point failures into ``FAILED``
table cells instead of aborting the sweep, ``--resume`` continues an
interrupted sweep from the checkpoint journal, and ``--inject-faults``
runs the sweep under a seeded chaos plan (testing the harness itself).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace

from ..common.errors import HarnessError
from ..core.batch import ENGINE_ENV, ENGINES
from .charts import chartable, render_bars
from .checkpoint import CHECKPOINT_NAME, Checkpoint
from .executor import Executor
from .experiments import REGISTRY, Settings, run_experiment, set_executor
from .faultinject import FaultPlan
from .result_cache import ResultCache, default_cache_dir


def prescreen(settings: Settings, strict: bool = False) -> bool:
    """Static pre-screen of every suite workload at the current settings.

    Runs the :mod:`repro.analysis` happens-before scan and lint over each
    workload the experiments will simulate, annotating stderr with one
    line per workload.  Returns False (and, under ``strict``, the caller
    aborts) when any workload lints at error severity or its barriers
    deadlock — those runs would waste simulation time or hang.
    """
    from ..synth.base import generate
    from ..synth.suite import RACY_SUITE, SUITE
    from ..tools.analyze import analyze_program

    clean = True
    for name in tuple(SUITE) + tuple(RACY_SUITE):
        program = generate(
            name,
            num_threads=settings.num_threads,
            seed=settings.seed,
            scale=settings.scale,
        )
        report = analyze_program(program, settings.config())
        races = report["races"]
        lint = report["lint"]
        race_note = (
            "barrier deadlock" if "error" in races
            else f"{races['count']} predicted conflict(s)"
        )
        print(
            f"[analyze: {name}: {race_note}, lint "
            f"{lint['count']} finding(s)"
            + (f", worst={lint['max_severity']}" if lint["count"] else "")
            + "]",
            file=sys.stderr,
        )
        for finding in lint["findings"]:
            print(
                f"[analyze:   {finding['rule']}:{finding['severity']} "
                f"{finding['subject']}: {finding['message']}]",
                file=sys.stderr,
            )
        if lint["max_severity"] == "error" or "error" in races:
            clean = False
    if not clean and strict:
        print(
            "[analyze: error-severity findings; aborting (--analyze-strict)]",
            file=sys.stderr,
        )
    return clean


def _build_settings(args: argparse.Namespace) -> Settings:
    presets = {
        "full": Settings.full,
        "bench": Settings.bench,
        "quick": Settings.quick,
    }
    settings = presets[args.preset]()
    overrides = {
        name: value
        for name, value in (
            ("num_threads", args.threads),
            ("scale", args.scale),
            ("seed", args.seed),
        )
        if value is not None
    }
    return replace(settings, **overrides) if overrides else settings


def _build_executor(args: argparse.Namespace) -> Executor:
    cache = None
    if not args.no_cache:
        # .open() sweeps stale .tmp-* residue a crashed writer left behind
        cache = ResultCache.open(args.cache_dir or default_cache_dir())
        if cache.stats.tmp_reclaimed:
            print(
                f"[cache: reclaimed {cache.stats.tmp_reclaimed} stale "
                "tmp file(s) from a previous crash]",
                file=sys.stderr,
            )
    checkpoint = None
    if cache is not None:
        checkpoint = Checkpoint(
            cache.root / CHECKPOINT_NAME, resume=args.resume
        )
        if args.resume:
            summary = checkpoint.summary()
            print(
                f"[resume: {summary['completed']} completed, "
                f"{summary['failed']} failed point(s) journaled in "
                f"{summary['path']}]",
                file=sys.stderr,
            )
            if checkpoint.torn_bytes:
                print(
                    f"[resume: dropped {checkpoint.torn_bytes} torn "
                    "byte(s) from the checkpoint tail]",
                    file=sys.stderr,
                )
    plan = None
    if args.inject_faults:
        plan = FaultPlan.parse(args.inject_faults)
        print(f"[faultinject: {plan.describe()}]", file=sys.stderr)
    return Executor(
        jobs=args.jobs,
        cache=cache,
        point_timeout=args.point_timeout,
        retries=args.retries,
        keep_going=args.keep_going,
        fault_plan=plan,
        checkpoint=checkpoint,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.run",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id, or 'all'")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--preset", choices=("full", "bench", "quick"), default="full"
    )
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--jobs", default="1",
        help="worker processes for simulation points: a count, or 'auto' "
        "to clamp to the CPU count (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default: ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per simulation point; a hung point's "
        "worker is killed and the point retried or failed",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry transient point failures (worker crash, pool "
        "breakage) up to N times with exponential backoff",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="don't abort on a terminally failed point: record it, mark "
        "its cells FAILED and finish the rest of the sweep",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep from the checkpoint journal "
        "in the cache directory (completed points are cache hits; "
        "with --keep-going, known-failed points are not re-attempted)",
    )
    parser.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="run under a deterministic chaos plan, e.g. "
        "'seed=7,crash=0.2,slow=0.05,slow-seconds=5,corrupt=0.2,"
        "pickle=0.1' (harness self-test)",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="render numeric tables as ASCII bar charts",
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="pre-screen the workload suite with the static analyzer "
        "(races + lint) and annotate stderr before running",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="arm the coherence invariant sanitizer in every simulation "
        "(repro.modelcheck): per-dispatch SWMR/directory/metadata checks "
        "that raise at the first violated invariant; stdout is unchanged",
    )
    parser.add_argument(
        "--analyze-strict", action="store_true",
        help="like --analyze, but exit 3 on error-severity findings "
        "instead of running",
    )
    parser.add_argument(
        "--engine", choices=list(ENGINES), default=None,
        help="simulation engine: 'batch' (default) bulk-applies "
        "uncontended L1 hit runs, 'scalar' dispatches every event "
        "through the protocol model; both are byte-identical "
        "(docs/ENGINE.md), so this only affects wall-clock",
    )
    args = parser.parse_args(argv)

    if args.engine:
        # Same env-var pattern as --sanitize: forked harness workers
        # rebuild their own simulators and inherit the choice.
        os.environ[ENGINE_ENV] = args.engine

    if args.sanitize:
        # The env var (not a flag threaded through call sites) so that
        # forked/spawned harness workers inherit the setting when they
        # rebuild their own Machines.
        os.environ["REPRO_SANITIZE"] = "1"
        print("[sanitize: coherence invariant checks armed]", file=sys.stderr)

    if args.list or not args.experiment:
        print(f"{'experiment id':26s}  {'paper artifact':28s}  description")
        for exp in REGISTRY.values():
            print(f"{exp.exp_id:26s}  {exp.paper_artifact:28s}  {exp.description}")
        return 0

    settings = _build_settings(args)
    if args.analyze or args.analyze_strict:
        if not prescreen(settings, strict=args.analyze_strict):
            if args.analyze_strict:
                return 3
    if args.resume and args.no_cache:
        parser.error("--resume needs the cache (its checkpoint journal)")
    targets = list(REGISTRY) if args.experiment == "all" else [args.experiment]
    executor = _build_executor(args)
    set_executor(executor)
    try:
        for exp_id in targets:
            start = time.perf_counter()
            try:
                tables = run_experiment(exp_id, settings)
            except (HarnessError, KeyError, ValueError, ZeroDivisionError):
                if not args.keep_going:
                    raise
                # an experiment whose rendering cannot survive missing
                # points degrades to an explicit partial-failure marker
                elapsed = time.perf_counter() - start
                print(f"[{exp_id}: {elapsed:.1f}s, PARTIAL]", file=sys.stderr)
                print(f"\n### {exp_id} ({REGISTRY[exp_id].paper_artifact})\n")
                print("[not rendered: failed simulation points "
                      "(--keep-going); see stderr and manifest]\n")
                continue
            elapsed = time.perf_counter() - start
            print(f"[{exp_id}: {elapsed:.1f}s]", file=sys.stderr)
            print(f"\n### {exp_id} ({REGISTRY[exp_id].paper_artifact})\n")
            for table in tables:
                if args.chart and chartable(table):
                    print(render_bars(table))
                else:
                    print(table.render())
                print()
    except KeyboardInterrupt:
        # hung workers must not block the exit path; the checkpoint
        # journal and cache already hold every settled point
        executor.terminate()
        print("[interrupted: partial progress checkpointed; rerun with "
              "--resume]", file=sys.stderr)
        raise
    finally:
        set_executor(None)
        executor.close()

    manifest = executor.manifest
    summary = (
        f"[executor: jobs={executor.jobs} points={len(manifest.entries)} "
        f"hits={manifest.hits} misses={manifest.misses}"
    )
    if manifest.retried:
        summary += f" retried={manifest.retried}"
    if manifest.failed:
        summary += f" timeouts={manifest.timeouts} failed={manifest.failed}"
    if executor.cache is not None:
        summary += f" corrupt_evictions={manifest.corrupt_evictions}"
        # merge-write: concurrent sweeps sharing this cache dir each
        # land their entries without erasing the others' audit trail
        path = manifest.write_merged(executor.cache.root / "manifest.json")
        summary += f" manifest={path}"
    print(summary + "]", file=sys.stderr)
    for failure in executor.point_failures:
        print(
            f"[failed point: workload={failure.workload} "
            f"protocol={failure.protocol} kind={failure.kind} "
            f"attempts={failure.attempts} key={failure.key[:12]}: "
            f"{failure.message}]",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
