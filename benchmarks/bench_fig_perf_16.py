"""Bench: regenerate the per-workload performance figure.

Expected shape (paper): CE is the slowest detector (metadata in main
memory), CE+ recovers most of that loss, ARC is competitive with CE+ on
average.  Absolute ratios differ from the paper's testbed; the ordering
is what must hold.
"""


def test_fig_perf(run_exp):
    (table,) = run_exp("fig_perf_16")
    geomean = table.row_dict("workload")["geomean"]
    # CE never beats CE+ overall; all ratios are positive and sane.
    assert geomean["ce"] >= geomean["ce+"] - 0.02
    for proto in ("ce", "ce+", "arc"):
        assert 0.3 < geomean[proto] < 10.0
