"""Tests for the bounded (sparse) directory and its recalls."""

import pytest

from repro.common.config import ProtocolKind, SystemConfig
from repro.common.errors import ConfigError
from repro.core.api import compare_protocols, run_program
from repro.core.machine import Machine
from repro.protocols.ce import CeProtocol
from repro.protocols.mesi import MesiProtocol
from repro.synth import build_workload


def make(proto_cls=MesiProtocol, entries=8, num_cores=4, **cfg_kw):
    cfg = SystemConfig(
        num_cores=num_cores,
        protocol="ce" if proto_cls is CeProtocol else "mesi",
        directory_entries_per_bank=entries,
        **cfg_kw,
    )
    machine = Machine(cfg)
    return machine, proto_cls(machine)


def bank0_lines(machine, count):
    """Distinct lines all homed at bank 0."""
    stride = 64 * machine.cfg.num_banks
    return [i * stride for i in range(count)]


class TestConfig:
    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(directory_entries_per_bank=4)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(directory_entries_per_bank=100)

    def test_full_map_default(self):
        machine = Machine(SystemConfig(num_cores=4))
        assert MesiProtocol(machine).dir_store is None


class TestRecalls:
    def test_pressure_causes_recall(self):
        machine, proto = make(entries=8)
        lines = bank0_lines(machine, 10)
        for i, line in enumerate(lines):
            proto.access(0, line, 8, False, i * 10)
        assert machine.stats.directory_recalls > 0

    def test_recall_invalidates_cached_copies(self):
        machine, proto = make(entries=8)
        lines = bank0_lines(machine, 9)
        proto.access(1, lines[0], 8, False, 0)  # line 0 cached at core 1
        for i, line in enumerate(lines[1:], start=1):
            proto.access(0, line, 8, False, i * 10)
        # the LRU dir entry (lines[0]) was recalled: core 1 lost its copy
        assert machine.stats.directory_recalls >= 1
        assert proto.l1[1].peek(lines[0]) is None

    def test_recall_writes_back_dirty_owner(self):
        machine, proto = make(entries=8)
        lines = bank0_lines(machine, 9)
        proto.access(1, lines[0], 8, True, 0)  # dirty at core 1
        for i, line in enumerate(lines[1:], start=1):
            proto.access(0, line, 8, False, i * 10)
        bank = machine.home_bank(lines[0])
        assert machine.llc_banks[bank].contains(lines[0])
        assert proto.l1[1].peek(lines[0]) is None

    def test_recalled_line_still_coherent_afterwards(self):
        machine, proto = make(entries=8)
        lines = bank0_lines(machine, 9)
        proto.access(1, lines[0], 8, True, 0)
        for i, line in enumerate(lines[1:], start=1):
            proto.access(0, line, 8, False, i * 10)
        # refetching the recalled line works and is exclusive again
        proto.access(2, lines[0], 8, True, 1000)
        from repro.protocols.base import M

        assert proto.l1[2].peek(lines[0]).state == M


class TestCeUnderPressure:
    def test_recall_spills_live_access_bits(self):
        machine, proto = make(CeProtocol, entries=8)
        lines = bank0_lines(machine, 9)
        proto.access(1, lines[0], 8, True, 0)  # live write bits at core 1
        for i, line in enumerate(lines[1:], start=1):
            proto.access(0, line, 8, False, i * 10)
        assert machine.stats.directory_recalls >= 1
        assert machine.stats.metadata_spills >= 1
        # the spilled bits still catch a conflicting access
        proto.access(2, lines[0], 8, True, 1000)
        assert any(
            c.first_core == 1 and c.detected_by == "meta-check"
            for c in machine.stats.conflicts
        )

    def test_conflict_free_workload_stays_clean_under_pressure(self):
        cfg = SystemConfig(num_cores=4, directory_entries_per_bank=64)
        program = build_workload("false-sharing", num_threads=4, seed=1, scale=0.1)
        comparison = compare_protocols(
            cfg, program, protocols=[ProtocolKind.CE, ProtocolKind.CEPLUS]
        )
        for proto, result in comparison.results.items():
            assert result.num_conflicts == 0, proto

    def test_sparse_directory_costs_traffic(self):
        program = build_workload(
            "dataparallel-blackscholes", num_threads=4, seed=1, scale=0.2
        )
        full = run_program(SystemConfig(num_cores=4, protocol="ce"), program)
        sparse = run_program(
            SystemConfig(
                num_cores=4, protocol="ce", directory_entries_per_bank=64
            ),
            program,
        )
        assert sparse.stats.directory_recalls > 0
        assert full.stats.directory_recalls == 0
        assert sparse.stats.invalidations_sent > full.stats.invalidations_sent
        assert sparse.stats.metadata_spills >= full.stats.metadata_spills
