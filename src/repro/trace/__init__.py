"""Trace substrate: events, builders, programs, SFR analysis, validation, IO."""

from .builder import TraceBuilder
from .events import (
    ACQUIRE,
    BARRIER,
    EVENT_DTYPE,
    KIND_NAMES,
    READ,
    RELEASE,
    WRITE,
    ThreadTrace,
)
from .binio import (
    BinTraceReader,
    BinTraceWriter,
    StreamedProgram,
    load_program_bin,
    save_program_bin,
    stream_program_bin,
)
from .io import load_program, save_program
from .program import Program, ProgramStats
from .regions import RegionSummary, region_ids, region_lengths, summarize_regions
from .validate import validate_program, validate_trace

__all__ = [
    "ACQUIRE",
    "BARRIER",
    "BinTraceReader",
    "BinTraceWriter",
    "EVENT_DTYPE",
    "KIND_NAMES",
    "Program",
    "ProgramStats",
    "READ",
    "RELEASE",
    "RegionSummary",
    "StreamedProgram",
    "ThreadTrace",
    "TraceBuilder",
    "WRITE",
    "load_program",
    "load_program_bin",
    "save_program_bin",
    "stream_program_bin",
    "region_ids",
    "region_lengths",
    "save_program",
    "summarize_regions",
    "validate_program",
    "validate_trace",
]
