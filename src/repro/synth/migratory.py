"""Migratory sharing ("token-passing" blob).

Threads take turns (serialized by a lock) reading and then rewriting an
entire multi-line shared blob — the migratory pattern of SPLASH-2's
radiosity/volrend task structures.  Under MESI every handoff is a chain
of forwards (the whole blob moves M -> M between cores); under ARC each
handoff is a self-downgrade flush plus LLC refetches.  Regions are
longer than lock-counter's, so CE also begins to spill access bits when
the blob and private traffic exceed L1 capacity.
"""

from __future__ import annotations

from ..common.rng import make_rng
from ..trace.program import Program
from .base import scaled, workload
from .patterns import AddressSpace, TraceAssembler, random_span, strided_span


@workload("migratory-token")
def generate(
    num_threads: int,
    seed: int,
    scale: float,
    *,
    rounds: int = 120,
    blob_lines: int = 16,
    private_ops: int = 48,
    gap: int = 1,
) -> Program:
    rounds = scaled(rounds, scale)
    space = AddressSpace()
    blob_words = strided_span(space.alloc_lines(blob_lines), blob_lines * 8)
    privates = space.alloc_per_thread(num_threads, 64 * 1024)
    lock = 0

    traces = []
    for tid in range(num_threads):
        rng = make_rng(seed, "migratory", tid)
        asm = TraceAssembler()
        for _ in range(rounds):
            asm.acquire(lock)
            asm.reads(blob_words)
            asm.writes(blob_words)
            asm.release(lock)
            asm.accesses(
                random_span(rng, privates[tid], 64 * 1024, private_ops),
                rng.random(private_ops) < 0.5,
                gap=gap,
            )
        traces.append(asm.build())
    return Program(traces, name="migratory-token")
