"""Access-information metadata shared by CE, CE+ and ARC.

``SpilledEntry`` holds one core's byte-level read/write masks for one
line, tagged with the region index that produced them.  An entry is
*live* only while that region is still the core's current region; stale
entries are semantically cleared (CE flash-clears, ARC epoch-tags) and
are reclaimed opportunistically.
"""

from __future__ import annotations


class SpilledEntry:
    """One (line, core) access-information record."""

    __slots__ = ("read_mask", "write_mask", "region")

    def __init__(self, read_mask: int, write_mask: int, region: int):
        self.read_mask = read_mask
        self.write_mask = write_mask
        self.region = region

    def merge(self, read_mask: int, write_mask: int) -> None:
        self.read_mask |= read_mask
        self.write_mask |= write_mask

    def conflicts_with(self, mask: int, is_write: bool) -> int:
        """Byte overlap that makes ``mask`` conflict with this entry.

        A write conflicts with any recorded access; a read only with
        recorded writes.  Returns the overlapping byte mask (0 = none).
        """
        if is_write:
            return mask & (self.read_mask | self.write_mask)
        return mask & self.write_mask


class AccessInfoTable:
    """line -> core -> SpilledEntry, with stale-entry reclamation.

    Used both as CE's in-memory metadata (architectural contents cached
    by the AIM) and as ARC's LLC-resident access-information table.
    """

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: dict[int, dict[int, SpilledEntry]] = {}

    def get_line(self, line: int) -> dict[int, SpilledEntry] | None:
        return self._table.get(line)

    def upsert(
        self, line: int, core: int, read_mask: int, write_mask: int, region: int
    ) -> SpilledEntry:
        """Merge masks into (line, core)'s entry, resetting it if the
        recorded region is no longer current (``region`` differs)."""
        per_line = self._table.setdefault(line, {})
        entry = per_line.get(core)
        if entry is None or entry.region != region:
            entry = SpilledEntry(read_mask, write_mask, region)
            per_line[core] = entry
        else:
            entry.merge(read_mask, write_mask)
        return entry

    def remove(self, line: int, core: int) -> SpilledEntry | None:
        per_line = self._table.get(line)
        if per_line is None:
            return None
        entry = per_line.pop(core, None)
        if not per_line:
            del self._table[line]
        return entry

    def live_others(
        self, line: int, core: int, current_region_of
    ) -> list[tuple[int, SpilledEntry]]:
        """Entries of *other* cores whose regions are still in progress.

        ``current_region_of`` maps core -> current region index.  Stale
        entries encountered on the way are reclaimed (lazy clearing).
        """
        per_line = self._table.get(line)
        if per_line is None:
            return []
        live: list[tuple[int, SpilledEntry]] = []
        stale: list[int] = []
        for other, entry in per_line.items():
            if entry.region != current_region_of[other]:
                stale.append(other)
            elif other != core:
                live.append((other, entry))
        for other in stale:
            del per_line[other]
        if not per_line:
            del self._table[line]
        return live

    def items(self):
        """Iterate ``(line, core, entry)`` over every stored record.

        Read-only introspection for the model checker's liveness
        invariants and the sanitizer; iteration order is insertion order
        (deterministic) and must not be relied on for semantics.
        """
        for line, per_line in self._table.items():
            for core, entry in per_line.items():
                yield line, core, entry

    def __len__(self) -> int:
        return sum(len(per_line) for per_line in self._table.values())
