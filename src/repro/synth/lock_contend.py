"""Contended lock-protected counters.

The canonical tiny-critical-section workload: every thread loops
acquiring one global lock, reading and incrementing a handful of shared
counters, releasing, then doing private work.  Regions are tiny and the
counter lines migrate between all cores — maximal lock handoff plus
migratory sharing.  CE's in-cache bits barely spill here (regions are
short), but MESI-family forwards/invalidations dominate traffic.
"""

from __future__ import annotations

from ..common.rng import make_rng
from ..trace.program import Program
from .base import scaled, workload
from .patterns import AddressSpace, TraceAssembler, random_span, strided_span


@workload("lock-counter")
def generate(
    num_threads: int,
    seed: int,
    scale: float,
    *,
    iterations: int = 400,
    counters: int = 4,
    private_ops: int = 24,
    gap: int = 1,
) -> Program:
    iters = scaled(iterations, scale)
    space = AddressSpace()
    counter_addrs = strided_span(space.alloc_lines(1), counters)
    privates = space.alloc_per_thread(num_threads, 32 * 1024)
    lock = 0

    traces = []
    for tid in range(num_threads):
        rng = make_rng(seed, "lock-counter", tid)
        asm = TraceAssembler()
        for _ in range(iters):
            asm.acquire(lock)
            asm.reads(counter_addrs)
            asm.writes(counter_addrs)
            asm.release(lock)
            asm.accesses(
                random_span(rng, privates[tid], 32 * 1024, private_ops),
                rng.random(private_ops) < 0.4,
                gap=gap,
            )
        traces.append(asm.build())
    return Program(traces, name="lock-counter")
