#!/usr/bin/env python3
"""Capture a blackscholes-like pricing map and compare trace formats.

The `capture-blackscholes` workload is a data-parallel option pricer:
each thread reads its slice of the spot/strike arrays, charges compute
cycles for the pricing kernel, writes its result, and bumps a shared
progress counter under a lock every few options.

The captured Program round-trips through both on-disk formats — the
monolithic `.npz` archive and the chunked, delta-encoded `.rtb` binary
stream — and this script shows the size difference plus a result-level
equality check after reload.

Run:  python examples/capture/blackscholes.py
"""

import tempfile
from pathlib import Path

from repro import SystemConfig, run_program
from repro.synth import build_workload
from repro.trace.io import load_program, save_program


def main() -> None:
    program = build_workload(
        "capture-blackscholes", num_threads=4, seed=3, scale=1.0
    )
    stats = program.stats()
    print(f"captured {program.name}: {stats.num_events:,} events, "
          f"{stats.num_accesses:,} accesses, {stats.num_regions} regions")

    with tempfile.TemporaryDirectory() as tmp:
        npz = Path(tmp) / "bs.npz"
        rtb = Path(tmp) / "bs.rtb"
        save_program(program, npz)
        save_program(program, rtb)
        npz_size = npz.stat().st_size
        rtb_size = rtb.stat().st_size
        print(f"on disk: npz {npz_size:,} B, rtb {rtb_size:,} B "
              f"({npz_size / rtb_size:.1f}x smaller)")

        cfg = SystemConfig(num_cores=4, protocol="arc")
        baseline = run_program(cfg, program).summary()
        for path in (npz, rtb):
            reloaded = run_program(cfg, load_program(path)).summary()
            match = reloaded == baseline
            print(f"replay from {path.suffix}: cycles "
                  f"{reloaded['cycles']:,.0f}, identical to in-memory run: "
                  f"{match}")


if __name__ == "__main__":
    main()
