"""Smoke tests: every example script runs and prints what it promises.

Examples execute in-process (import + main) with a monkeypatched argv
where needed, so breakage in the public API surfaces here.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "runtime (vs MESI)" in out
        assert "conflicts detected" in out

    def test_conflict_detection_demo(self, capsys):
        out = run_example("conflict_detection_demo.py", [], capsys)
        assert "W-W conflict" in out
        assert "RegionConflictError" in out
        assert out.count("0 conflicts") == 3  # false-sharing silence x3

    def test_network_saturation_quick(self, capsys):
        out = run_example("network_saturation.py", ["--quick"], capsys)
        assert "peak util" in out
        assert "8 cores" in out

    def test_core_count_scaling_tiny(self, capsys):
        out = run_example("core_count_scaling.py", ["--tiny"], capsys)
        assert "runtime vs MESI" in out
        assert "flit-hops vs MESI" in out

    def test_verification_demo(self, capsys):
        out = run_example("verification_demo.py", [], capsys)
        assert "detected ⊆ overlap: True" in out
        assert "clean run 0 conflicts" in out
        assert "injected run" in out


@pytest.mark.slow
class TestCaptureExamples:
    def test_histogram(self, capsys):
        out = run_example("capture/histogram.py", [], capsys)
        assert "captured histogram-example" in out
        assert "total 384 == items 384: True" in out
        assert "conflicts 0" in out

    def test_blackscholes(self, capsys):
        out = run_example("capture/blackscholes.py", [], capsys)
        assert "identical to in-memory run: True" in out
        assert "x smaller" in out

    def test_pipeline(self, capsys):
        out = run_example("capture/pipeline.py", [], capsys)
        assert "captured capture-pipeline" in out
        assert "0 conflicts" in out

    def test_workqueue(self, capsys):
        out = run_example("capture/workqueue.py", [], capsys)
        assert "streamed replay identical to in-memory replay: True" in out

    def test_racy_counter(self, capsys):
        out = run_example("capture/racy_counter.py", [], capsys)
        assert "detected ⊆ overlap: True" in out
        assert "conflicts reported" in out
