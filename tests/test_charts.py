"""Tests for the ASCII bar-chart renderer."""

import pytest

from repro.harness.charts import chartable, render_bars
from repro.harness.tables import TextTable


def figure_table():
    table = TextTable("Runtime normalized to MESI", ["workload", "ce", "ce+", "arc"])
    table.add_row("lock-counter", 1.2, 1.0, 0.9)
    table.add_row("migratory", 2.0, 1.1, 0.8)
    return table


class TestChartable:
    def test_numeric_table_is_chartable(self):
        assert chartable(figure_table())

    def test_text_cells_not_chartable(self):
        table = TextTable("t", ["a", "b"])
        table.add_row("x", "text")
        assert not chartable(table)

    def test_bool_cells_not_chartable(self):
        table = TextTable("t", ["a", "b"])
        table.add_row("x", True)
        assert not chartable(table)

    def test_empty_table_not_chartable(self):
        assert not chartable(TextTable("t", ["a", "b"]))


class TestRenderBars:
    def test_contains_labels_and_values(self):
        text = render_bars(figure_table())
        for token in ("lock-counter", "migratory", "ce", "arc", "1.200", "0.800"):
            assert token in text

    def test_bar_lengths_ordered(self):
        text = render_bars(figure_table(), width=40)
        lines = {line.strip().split()[0]: line for line in text.splitlines()
                 if "#" in line}
        ce_line = lines["ce"]
        arc_line = lines["arc"]
        assert ce_line.count("#") >= arc_line.count("#")

    def test_baseline_tick_present(self):
        text = render_bars(figure_table(), baseline=1.0)
        assert "|" in text

    def test_no_baseline(self):
        text = render_bars(figure_table(), baseline=None)
        assert "|" not in text

    def test_non_numeric_rejected(self):
        table = TextTable("t", ["a", "b"])
        table.add_row("x", "nope")
        with pytest.raises(ValueError):
            render_bars(table)

    def test_all_zero_values(self):
        table = TextTable("t", ["a", "b"])
        table.add_row("x", 0.0)
        text = render_bars(table, baseline=None)
        assert "0.000" in text


class TestCliIntegration:
    def test_chart_flag(self, capsys):
        from repro.harness.run import main

        assert main(["fig_perf_16", "--preset", "quick", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "#" in out
        assert "geomean" in out
