"""Directory-based MESI coherence — the baseline every figure normalizes to.

Geometry: private L1 per core; shared LLC banked by line address, with a
full-map directory slice at each home bank.  The protocol is
transaction-at-a-time (the simulator serializes each core's accesses),
so transient states never arise; what is modeled is the *work* of each
transaction — messages, cache/DRAM accesses — and the latency of its
critical path:

* read hit / write hit in E or M: L1 latency.
* write hit in S: upgrade — request to home, invalidations to all other
  sharers, acks back to the requester (latency: the slowest round trip).
* read miss: request to home; data from the LLC (fetching from DRAM on
  an LLC miss) or, if a remote L1 owns the line in E/M, a forward to the
  owner which downgrades to S and supplies data (writing the line back
  to the LLC off the critical path).
* write miss: request to home; invalidations to sharers and/or a forward
  to the exclusive owner, which surrenders ownership and supplies data.

``use_owned_state=True`` switches the baseline to **MOESI**: a read from
a modified owner downgrades it to O (it keeps the dirty data and keeps
supplying readers, with no LLC writeback); a write to an O line behaves
like an upgrade and also invalidates the owner when a *sharer* upgrades.

Modeling shortcut (documented): clean L1 evictions update the directory
directly without a message.  Real MESI lets the directory go stale and
pays occasional spurious invalidations instead; the traffic difference
is negligible and a precise directory keeps every transaction's sharer
set exact, which CE's conflict checks rely on.

The CE subclass hooks the four marked extension points; in this class
they are no-ops, making this file the pure baseline.
"""

from __future__ import annotations

from ..common.bitops import byte_mask
from ..mem.cache import SetAssocCache
from ..mem.hierarchy import PrivateHierarchy
from ..noc.messages import FWD, INV, REQ
from .base import DIRTY_STATES, E, M, O, S, CoherenceProtocol, DirEntry, MesiLine


class MesiProtocol(CoherenceProtocol):
    """Baseline MESI; also the chassis CE and CE+ extend."""

    name = "mesi"

    def __init__(self, machine):
        super().__init__(machine)
        cfg = self.cfg
        # Each entry is the core's whole private hierarchy (L1, plus the
        # optional exclusive L2); the attribute keeps its historical name.
        # Outward evictions arrive via callback at `self._now`, the cycle
        # of the access that displaced them.
        self._now = 0
        self.l1 = [
            PrivateHierarchy(
                cfg.l1,
                cfg.l2,
                on_evict=(
                    lambda c: lambda line, payload: self._evict(
                        c, line, payload, self._now
                    )
                )(core),
            )
            for core in range(cfg.num_cores)
        ]
        self.directory: dict[int, DirEntry] = {}
        # Optional bounded directory: one set-associative entry store per
        # bank; allocation pressure recalls (invalidates) victim lines.
        if cfg.directory_entries_per_bank is not None:
            entries = cfg.directory_entries_per_bank
            assoc = min(8, entries)
            self.dir_store = [
                SetAssocCache(entries // assoc, assoc, cfg.line_size)
                for _ in range(cfg.num_banks)
            ]
        else:
            self.dir_store = None

    def _dir(self, line_addr: int) -> DirEntry:
        if self.dir_store is None:
            entry = self.directory.get(line_addr)
            if entry is None:
                entry = DirEntry()
                self.directory[line_addr] = entry
            return entry
        store = self.dir_store[self.machine.home_bank(line_addr)]
        entry = store.get(line_addr)
        if entry is None:
            entry = DirEntry()
            victim = store.insert(line_addr, entry)
            if victim is not None:
                self._recall(victim[0], victim[1], self._now)
            self.directory[line_addr] = entry
        return entry

    def _recall(self, line: int, entry: DirEntry, cycle: int) -> None:
        """A sparse-directory eviction: invalidate every cached copy of
        the victim line (off the critical path; traffic is counted and
        live CE access bits spill via the removal hook)."""
        machine = self.machine
        self.stats.directory_recalls += 1
        home = machine.home_bank(line)
        targets = entry.sharer_list()
        if entry.owner != -1:
            targets.append(entry.owner)
        for core in targets:
            self.stats.invalidations_sent += 1
            machine.net.send(home, core, 0, INV, cycle)
            payload = self.l1[core].get(line, touch=False)
            if payload is not None:
                if payload.state in DIRTY_STATES:
                    machine.send_data(core, home, cycle)
                    machine.llc_writeback(home, line, cycle)
                self.l1[core].invalidate(line)
                self._on_line_removed(core, line, payload, cycle)
            machine.net.send(core, home, 0, INV, cycle)  # ack
        entry.owner = -1
        entry.sharers = 0
        self.directory.pop(line, None)

    # -- CE extension points (no-ops in the baseline) ---------------------------

    def _on_local_access(
        self, core: int, line: int, payload: MesiLine, mask: int, is_write: bool, cycle: int
    ) -> None:
        """Called after every completed access; CE updates access bits here."""

    def _check_remote(
        self,
        holder: int,
        payload: MesiLine,
        line: int,
        req_core: int,
        mask: int,
        req_is_write: bool,
        cycle: int,
        via: str,
    ) -> None:
        """Called at a remote holder before it is invalidated/downgraded."""

    def _home_metadata_check(
        self, core: int, line: int, mask: int, is_write: bool, cycle: int, bank: int
    ) -> tuple[int, tuple[int, int] | None]:
        """Called at the home bank during a miss/upgrade.

        Returns ``(extra latency, fill)``; ``fill`` is an ``(rmask,
        wmask)`` pair when the requester's own spilled metadata is
        re-filled into its L1 copy (CE/CE+ only).
        """
        return 0, None

    def _on_line_removed(self, core: int, line: int, payload: MesiLine, cycle: int) -> None:
        """Called when a line leaves an L1 (eviction or invalidation);
        CE spills live access bits here."""

    # -- the access path ---------------------------------------------------------

    def access(self, core: int, addr: int, size: int, is_write: bool, cycle: int) -> int:
        amap = self.machine.amap
        line = amap.line(addr)
        mask = byte_mask(amap.offset(addr), size, self.cfg.line_size)
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.writes += 1

        self._now = cycle
        cache = self.l1[core]
        payload, extra, from_l2 = cache.lookup(line)
        latency = self.cfg.l1.hit_latency + extra

        if payload is not None:
            if from_l2:
                stats.l2_hits += 1
            else:
                stats.l1_hits += 1
            if not is_write or payload.state >= E:
                if is_write:
                    payload.state = M
                self._on_local_access(core, line, payload, mask, is_write, cycle)
                return latency
            # Write hit in S: upgrade without data transfer.
            stats.upgrades += 1
            latency += self._upgrade(core, line, mask, cycle)
            payload.state = M
            self._on_local_access(core, line, payload, mask, is_write, cycle)
            return latency

        stats.l1_misses += 1
        miss_latency, state, fill = self._miss(core, line, mask, is_write, cycle)
        latency += miss_latency

        new_payload = MesiLine(state)
        if fill is not None:
            new_payload.read_mask, new_payload.write_mask = fill
            new_payload.region = self.region[core]
        cache.insert(line, new_payload)  # outward evictions via callback
        self._on_local_access(core, line, new_payload, mask, is_write, cycle)
        return latency

    # -- transactions ---------------------------------------------------------------

    def _upgrade(self, core: int, line: int, mask: int, cycle: int) -> int:
        """Write hit in S (or, under MOESI, in O): gain exclusivity.

        Invalidates every other S copy and — when someone *else* owns
        the line in O — the owner's copy too.  The owner's dirty data
        need not move: every S copy it supplied holds the same values,
        so the requester already has current data.
        """
        net = self.machine.net
        home = self.machine.home_bank(line)
        latency = net.send(core, home, 0, REQ, cycle)
        self.stats.dir_lookups += 1
        latency += self.cfg.llc_bank.hit_latency
        extra, _ = self._home_metadata_check(core, line, mask, True, cycle, home)
        latency += extra
        entry = self._dir(line)
        sharers_rt = self._invalidate_sharers(entry, core, line, mask, True, cycle, home)
        owner_rt = 0
        if entry.owner not in (-1, core):
            owner = entry.owner
            self.stats.invalidations_sent += 1
            inv_lat = net.send(home, owner, 0, INV, cycle)
            payload = self.l1[owner].get(line, touch=False)
            if payload is not None:
                self._check_remote(
                    owner, payload, line, core, mask, True, cycle, "inv"
                )
                self.l1[owner].invalidate(line)
                self._on_line_removed(owner, line, payload, cycle)
            ack_lat = net.send(owner, core, 0, INV, cycle)
            owner_rt = inv_lat + self.cfg.l1.hit_latency + ack_lat
        latency += max(sharers_rt, owner_rt)
        entry.owner = core
        entry.sharers = 0
        return latency

    def _miss(
        self, core: int, line: int, mask: int, is_write: bool, cycle: int
    ) -> tuple[int, int, tuple[int, int] | None]:
        """Service an L1 miss; returns (latency, new state, metadata fill)."""
        machine = self.machine
        net = machine.net
        home = machine.home_bank(line)

        latency = net.send(core, home, 0, REQ, cycle)
        self.stats.dir_lookups += 1
        latency += self.cfg.llc_bank.hit_latency
        extra, fill = self._home_metadata_check(core, line, mask, is_write, cycle, home)
        latency += extra

        entry = self._dir(line)
        if is_write:
            latency += self._invalidate_sharers(entry, core, line, mask, True, cycle, home)
            if entry.owner not in (-1, core):
                latency += self._fetch_from_owner(
                    entry, core, line, mask, True, cycle, home, downgrade_to_s=False
                )
            else:
                latency += machine.llc_data_access(home, line, cycle, make_dirty=False)
                latency += machine.send_data(home, core, cycle)
            entry.owner = core
            entry.sharers = 0
            return latency, M, fill

        if entry.owner not in (-1, core):
            latency += self._fetch_from_owner(
                entry, core, line, mask, False, cycle, home, downgrade_to_s=True
            )
            entry.sharers |= 1 << core
            return latency, S, fill

        latency += machine.llc_data_access(home, line, cycle, make_dirty=False)
        latency += machine.send_data(home, core, cycle)
        if entry.sharers == 0:
            entry.owner = core
            return latency, E, fill
        entry.sharers |= 1 << core
        return latency, S, fill

    def _invalidate_sharers(
        self,
        entry: DirEntry,
        req_core: int,
        line: int,
        mask: int,
        req_is_write: bool,
        cycle: int,
        home: int,
    ) -> int:
        """Invalidate every S copy other than the requester's.

        Invalidation round trips proceed in parallel; the latency charged
        is the slowest (home -> sharer -> requester-ack) chain.
        """
        net = self.machine.net
        worst = 0
        for sharer in entry.sharer_list():
            if sharer == req_core:
                continue
            self.stats.invalidations_sent += 1
            inv_lat = net.send(home, sharer, 0, INV, cycle)
            payload = self.l1[sharer].get(line, touch=False)
            if payload is not None:
                self._check_remote(
                    sharer, payload, line, req_core, mask, req_is_write, cycle, "inv"
                )
                self.l1[sharer].invalidate(line)
                self._on_line_removed(sharer, line, payload, cycle)
            ack_lat = net.send(sharer, req_core, 0, INV, cycle)
            worst = max(worst, inv_lat + self.cfg.l1.hit_latency + ack_lat)
        entry.sharers = 1 << req_core if (entry.sharers >> req_core) & 1 else 0
        return worst

    def _fetch_from_owner(
        self,
        entry: DirEntry,
        req_core: int,
        line: int,
        mask: int,
        req_is_write: bool,
        cycle: int,
        home: int,
        *,
        downgrade_to_s: bool,
    ) -> int:
        """Forward the request to the exclusive owner, which supplies data.

        For a read the owner downgrades to S and writes the line back to
        the LLC (off the critical path); for a write it surrenders the
        line entirely.
        """
        machine = self.machine
        net = machine.net
        owner = entry.owner
        self.stats.forwards += 1

        latency = net.send(home, owner, 0, FWD, cycle)
        latency += self.cfg.l1.hit_latency
        payload = self.l1[owner].get(line, touch=False)
        if payload is not None:
            self._check_remote(
                owner, payload, line, req_core, mask, req_is_write, cycle, "fwd"
            )
            if downgrade_to_s:
                if self.cfg.use_owned_state and payload.state in DIRTY_STATES:
                    # MOESI: the owner keeps the dirty data in O and keeps
                    # supplying readers — no LLC writeback at all.
                    payload.state = O
                elif self.cfg.use_owned_state:
                    # clean E copy: the LLC already has the data
                    payload.state = S
                else:
                    # Plain MESI: owner pushes the (possibly dirty) line
                    # into the LLC so the directory can source later
                    # sharers; not on the critical path.
                    payload.state = S
                    self.stats.downgrade_writebacks += 1
                    machine.send_data(owner, home, cycle)
                    machine.llc_writeback(home, line, cycle)
            else:
                self.l1[owner].invalidate(line)
                self._on_line_removed(owner, line, payload, cycle)
        else:  # pragma: no cover - directory is precise, so this is a bug
            raise AssertionError("directory pointed at an owner without the line")
        latency += machine.send_data(owner, req_core, cycle)

        if downgrade_to_s:
            if self.cfg.use_owned_state and payload.state == O:
                # the owner remains the line's owner; the reader joins S
                entry.sharers |= 1 << req_core
            else:
                entry.sharers |= 1 << owner
                entry.owner = -1
        else:
            entry.owner = -1
        return latency

    def _evict(self, core: int, line: int, payload: MesiLine, cycle: int) -> None:
        """Handle an L1 capacity eviction (off the critical path)."""
        machine = self.machine
        self.stats.l1_evictions += 1
        entry = self._dir(line)
        if payload.state in DIRTY_STATES:
            self.stats.l1_writebacks += 1
            home = machine.home_bank(line)
            machine.send_data(core, home, cycle)
            machine.llc_writeback(home, line, cycle)
        # Directory updated directly (see module docstring).
        if entry.owner == core:
            entry.owner = -1
        entry.sharers &= ~(1 << core)
        self._on_line_removed(core, line, payload, cycle)

    # -- model-checker fingerprint --------------------------------------------------

    def snapshot(self) -> tuple:
        caches = []
        for core in range(self.cfg.num_cores):
            region = self.region[core]
            caches.append(tuple(
                (
                    # items() order is LRU order: it decides victims, so
                    # it is behavior and belongs in the fingerprint.
                    line,
                    payload.state,
                    # Masks of an ended region are semantically cleared;
                    # canonicalize them to zero so states merge.
                    payload.read_mask if payload.region == region else 0,
                    payload.write_mask if payload.region == region else 0,
                )
                for line, payload in self.l1[core].items()
            ))
        directory = tuple(
            (line, entry.owner, entry.sharers)
            for line, entry in sorted(self.directory.items())
            if entry.owner != -1 or entry.sharers
        )
        bounded = ()
        if self.dir_store is not None:
            bounded = tuple(
                tuple(line for line, _entry in store.items())
                for store in self.dir_store
            )
        return super().snapshot() + (tuple(caches), directory, bounded)
