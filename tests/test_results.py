"""Tests for RunResult/Comparison and the metadata table."""

import pytest

from repro.common.config import ProtocolKind, SystemConfig
from repro.core.api import compare_protocols, run_program
from repro.core.results import geomean
from repro.protocols.metadata import AccessInfoTable, SpilledEntry
from repro.synth import build_workload
from repro.trace import Program, TraceBuilder


@pytest.fixture(scope="module")
def comparison():
    program = build_workload("lock-counter", num_threads=4, seed=1, scale=0.05)
    return compare_protocols(SystemConfig(num_cores=4), program)


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([3.0]) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestComparison:
    def test_has_all_protocols(self, comparison):
        assert set(comparison.results) == {
            ProtocolKind.MESI,
            ProtocolKind.CE,
            ProtocolKind.CEPLUS,
            ProtocolKind.ARC,
        }

    def test_baseline_normalizes_to_one(self, comparison):
        for metric in ("cycles", "flit_hops", "offchip_bytes", "energy_nj"):
            assert comparison.normalized(metric)[ProtocolKind.MESI] == pytest.approx(1.0)

    def test_named_helpers_agree(self, comparison):
        assert comparison.normalized_runtime() == comparison.normalized("cycles")
        assert comparison.normalized_energy() == comparison.normalized("energy_nj")
        assert comparison.normalized_traffic() == comparison.normalized("flit_hops")
        assert comparison.normalized_offchip() == comparison.normalized("offchip_bytes")

    def test_missing_baseline_rejected(self, comparison):
        from repro.core.results import Comparison

        partial = Comparison(
            program_name="x",
            results={ProtocolKind.CE: comparison.results[ProtocolKind.CE]},
        )
        with pytest.raises(KeyError):
            partial.baseline

    def test_mesi_always_included(self):
        program = Program([TraceBuilder().read(0).build()])
        cmp = compare_protocols(
            SystemConfig(num_cores=2), program, protocols=["arc"]
        )
        assert ProtocolKind.MESI in cmp.results
        assert ProtocolKind.ARC in cmp.results

    def test_summary_keys(self, comparison):
        summary = comparison.baseline.summary()
        for key in (
            "cycles",
            "l1_miss_rate",
            "flit_hops",
            "offchip_bytes",
            "energy_nj",
            "conflicts",
            "aim_hit_rate",
        ):
            assert key in summary

    def test_energy_positive(self, comparison):
        for result in comparison.results.values():
            assert result.energy().total_nj > 0

    def test_flit_hops_by_category_sums(self, comparison):
        result = comparison.baseline
        assert sum(result.flit_hops_by_category().values()) == result.flit_hops


class TestAccessInfoTable:
    def test_upsert_merges_same_region(self):
        table = AccessInfoTable()
        table.upsert(0x40, 1, 0b1, 0, region=3)
        entry = table.upsert(0x40, 1, 0b10, 0b100, region=3)
        assert entry.read_mask == 0b11
        assert entry.write_mask == 0b100

    def test_upsert_resets_new_region(self):
        table = AccessInfoTable()
        table.upsert(0x40, 1, 0b1, 0, region=3)
        entry = table.upsert(0x40, 1, 0b10, 0, region=4)
        assert entry.read_mask == 0b10

    def test_live_others_filters_and_reclaims(self):
        table = AccessInfoTable()
        table.upsert(0x40, 1, 0b1, 0, region=3)
        table.upsert(0x40, 2, 0b1, 0, region=7)
        current = {1: 3, 2: 8}  # core 2 moved on
        live = table.live_others(0x40, core=0, current_region_of=current)
        assert [(core, e.region) for core, e in live] == [(1, 3)]
        # core 2's stale entry was reclaimed
        assert table.get_line(0x40) is not None
        assert 2 not in table.get_line(0x40)

    def test_remove_cleans_empty_lines(self):
        table = AccessInfoTable()
        table.upsert(0x40, 1, 1, 0, region=0)
        assert table.remove(0x40, 1).read_mask == 1
        assert table.get_line(0x40) is None
        assert table.remove(0x40, 1) is None
        assert len(table) == 0

    def test_conflicts_with(self):
        entry = SpilledEntry(read_mask=0b0011, write_mask=0b1100, region=0)
        assert entry.conflicts_with(0b0001, is_write=True) == 0b0001
        assert entry.conflicts_with(0b0100, is_write=False) == 0b0100
        assert entry.conflicts_with(0b0011, is_write=False) == 0
        assert entry.conflicts_with(0b10000, is_write=True) == 0


class TestRunProgramValidation:
    def test_invalid_program_rejected(self):
        import numpy as np

        from repro.common.errors import TraceError
        from repro.trace.events import EVENT_DTYPE, READ
        from repro.trace.events import ThreadTrace

        events = np.zeros(1, dtype=EVENT_DTYPE)
        events[0] = (READ, 60, 8, -1, 0)  # straddles a line
        program = Program([ThreadTrace(events)])
        with pytest.raises(TraceError):
            run_program(SystemConfig(num_cores=2), program)

    def test_validation_can_be_skipped(self):
        program = Program([TraceBuilder().read(0).build()])
        result = run_program(SystemConfig(num_cores=2), program, validate=False)
        assert result.stats.accesses == 1


class TestPickleRoundTrip:
    """Results are worker/cache transport: pickling may never drop a field.

    Comparing full summary() dicts (and the energy breakdown) before and
    after the round trip polices every metric the harness reports.
    """

    def _round_trip(self, obj):
        import pickle

        return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))

    def test_run_result_round_trip(self, comparison):
        for result in comparison.results.values():
            clone = self._round_trip(result)
            assert clone.summary() == result.summary()
            assert clone.energy().as_dict() == result.energy().as_dict()
            assert clone.flit_hops_by_category() == result.flit_hops_by_category()
            assert clone.cfg == result.cfg
            assert clone.program_name == result.program_name

    def test_stats_round_trip(self, comparison):
        from dataclasses import fields

        for result in comparison.results.values():
            stats = result.stats
            clone = self._round_trip(stats)
            for field in fields(stats):
                assert getattr(clone, field.name) == getattr(stats, field.name), (
                    field.name
                )
            # derived properties survive too
            assert clone.l1_miss_rate == stats.l1_miss_rate
            assert clone.aim_hit_rate == stats.aim_hit_rate
            assert clone.metadata_ops == stats.metadata_ops

    def test_stats_conflict_dedup_survives(self):
        from repro.common.errors import ConflictRecord
        from repro.core.stats import Stats

        stats = Stats()
        record = ConflictRecord(
            cycle=5, line_addr=0x40, byte_mask=0xFF,
            first_core=0, second_core=1, first_region=0, second_region=0,
            first_was_write=True, second_was_write=True, detected_by="fwd",
        )
        assert stats.record_conflict(record)
        clone = self._round_trip(stats)
        # the dedup signature set must travel with the conflict log
        assert not clone.record_conflict(record)
        assert len(clone.conflicts) == 1

    def test_system_config_round_trip(self):
        from dataclasses import replace

        from repro.common.config import AimConfig, CacheConfig, config_fingerprint

        cfg = replace(
            SystemConfig(
                num_cores=8,
                protocol=ProtocolKind.CEPLUS,
                aim=AimConfig(size=64 * 1024),
                l2=CacheConfig(size=256 * 1024, assoc=8, hit_latency=6),
            ),
            directory_entries_per_bank=1024,
            use_owned_state=True,
        )
        clone = self._round_trip(cfg)
        assert clone == cfg
        assert config_fingerprint(clone) == config_fingerprint(cfg)

    def test_comparison_round_trip(self, comparison):
        clone = self._round_trip(comparison)
        assert clone.summaries() == comparison.summaries()
        assert clone.normalized_runtime() == comparison.normalized_runtime()
