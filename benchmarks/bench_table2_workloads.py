"""Bench: regenerate Table II (workload characteristics)."""


def test_table2_workloads(run_exp):
    (table,) = run_exp("table2_workloads")
    assert len(table.rows) == 10  # 8 conflict-free + 2 racy workloads
    assert all(v > 0 for v in table.column("accesses"))
    assert all(v > 0 for v in table.column("regions"))
    # the suite spans sharing degrees from near-private to fully shared
    shared = table.column("shared %")
    assert min(shared) < 5.0 and max(shared) > 30.0
