"""Crash-safety proofs for the service: kill anywhere, drain converges.

The driver below is a whole service lifecycle in one subprocess: open
the data dir, upload a trace, submit a deterministic batch of jobs
(idempotently — resubmission dedupes), run a two-worker pool to drain,
print every result payload in submission order.  The chaos tests
SIGKILL-equivalent it at seeded kill points — queue transaction edges
(``queue:<op>:pre/post-commit``), result-cache stores, trace-store
upload writes — then restart and re-drain until a run completes clean,
asserting after every crash:

* **old-or-new**: ``repro-fsck`` over the data dir finds only
  recognized crash residue (a stale ``.tmp-*`` upload, an orphaned
  RUNNING lease, a torn journal tail) — never a corrupt cache entry,
  torn trace, or unreadable queue DB;
* **zero lost, zero duplicated**: every submitted job is still in the
  DB in exactly one state, and the drained queue ends with every job
  DONE exactly once;
* **byte-identical convergence**: the surviving run's output equals
  the fault-free run's, byte for byte — however many crashes landed
  in between (the cache-hit replay of the journal-then-acknowledge
  protocol).

Seeds rotate across restart attempts for the same reason
``test_crashsafe.py`` rotates them: a fixed deterministic plan would
kill every restart at the same not-yet-durable site forever.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.common.durable import KILLPOINT_EXIT_STATUS
from repro.tools.fsck import fsck_paths

DRIVER = textwrap.dedent("""
    import sys
    from pathlib import Path

    from repro.harness.result_cache import ResultCache
    from repro.service.jobs import render_payload
    from repro.service.models import JobSpec
    from repro.service.queue import JobQueue
    from repro.service.tracestore import TraceStore
    from repro.service.worker import WorkerPool
    from repro.synth import generate
    from repro.trace.io import save_program

    data = Path(sys.argv[1])
    data.parent.mkdir(parents=True, exist_ok=True)
    # a deterministic .rtb, regenerated outside the audited dir each run
    sample = data.parent / "sample.rtb"
    if not sample.is_file():
        staging = data.parent / "staging-sample.rtb"  # .rtb picks binio
        save_program(
            generate("lock-counter", num_threads=2, seed=9, scale=0.03),
            staging,
        )
        staging.replace(sample)

    # max_attempts is deliberately huge: this driver is killed dozens of
    # times per seed, and every kill mid-RUNNING burns an attempt; the
    # exhaustion path has its own unit tests
    queue = JobQueue(
        data / "queue.sqlite", lease_seconds=2.0, max_attempts=999
    )
    store = TraceStore.open(data / "traces")
    uploaded = store.put_file(sample)

    specs = [
        JobSpec(kind="analyze", workload="lock-counter",
                threads=2, seed=s, scale=0.03)
        for s in range(1, 4)
    ] + [JobSpec(kind="analyze", trace=uploaded.digest)]
    ids = []
    for spec in specs:
        record, _ = queue.submit(spec)
        ids.append(record.id)

    pool = WorkerPool(queue, store, data / "cache", workers=2)
    pool.start()
    drained = pool.drain(timeout=120.0)
    pool.stop()
    assert drained, "drain did not converge"

    cache = ResultCache(data / "cache")
    for job_id in ids:
        record = queue.get(job_id)
        assert record is not None, f"job {job_id[:12]} was lost"
        assert record.state.value == "DONE", (
            f"{job_id[:12]}: {record.state.value} ({record.error})"
        )
        payload = cache.get(record.result_key, expect=dict)
        assert payload is not None, f"result of {job_id[:12]} missing"
        sys.stdout.write(render_payload(payload))
    queue.close()
""")

#: residue a kill may leave; anything else is torn-write garbage the
#: durable disciplines must make impossible
RESIDUE_KINDS = {"torn-journal", "stale-tmp", "stale-lease"}

N_JOBS = 4


def run_driver(data_dir: Path, env_extra: dict | None = None):
    env = {**os.environ, "PYTHONPATH": "src"}
    env.pop("REPRO_KILLPOINTS", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-c", DRIVER, str(data_dir)],
        env=env, capture_output=True, text=True,
    )


@pytest.fixture(scope="module")
def fault_free_output(tmp_path_factory):
    """Expected stdout — and proof a warm restart dedupes to the same."""
    data_dir = tmp_path_factory.mktemp("svc-baseline") / "data"
    first = run_driver(data_dir)
    assert first.returncode == 0, first.stderr
    again = run_driver(data_dir)  # resubmit-everything restart: all dedupe
    assert again.returncode == 0, again.stderr
    assert again.stdout == first.stdout
    assert first.stdout.count("\n") == N_JOBS
    return first.stdout


def assert_old_or_new(data_dir: Path) -> None:
    report = fsck_paths([data_dir], repair=False, tmp_age=0)
    bad = [f for f in report.findings if f.kind not in RESIDUE_KINDS]
    assert not bad, [f.to_dict() for f in bad]


def crash_and_recover(data_dir: Path, seed: int, rate: float = 0.02,
                      max_attempts: int = 30, sites: str = ""):
    """Kill-restart the service driver until a run completes clean."""
    crashes = 0
    for attempt in range(max_attempts):
        spec = f"seed={seed + 1000 * attempt},rate={rate},tear=0.5"
        if sites:
            spec += f",sites={sites}"
        proc = run_driver(data_dir, env_extra={"REPRO_KILLPOINTS": spec})
        if proc.returncode == 0:
            return crashes, proc.stdout
        assert proc.returncode == KILLPOINT_EXIT_STATUS, (
            f"seed {seed} attempt {attempt}: unexpected exit "
            f"{proc.returncode}\n{proc.stderr}"
        )
        crashes += 1
        assert_old_or_new(data_dir)
    pytest.fail(f"seed {seed}: no clean run within {max_attempts} attempts")


@pytest.mark.faultinject
def test_service_crash_convergence_over_seeds(tmp_path, fault_free_output):
    """20 seeds of kill-anywhere chaos: every data dir converges to the
    fault-free output with zero lost and zero duplicated jobs."""
    from repro.service.models import JobState
    from repro.service.queue import JobQueue

    seeds = range(1, 21)
    total_crashes = 0
    for seed in seeds:
        data_dir = tmp_path / f"seed-{seed}" / "data"
        crashes, stdout = crash_and_recover(data_dir, seed)
        total_crashes += crashes
        assert stdout == fault_free_output, f"seed {seed} diverged"
        # exactly-once settlement, straight from the recovered DB
        with JobQueue(data_dir / "queue.sqlite") as queue:
            records = queue.list_jobs(limit=1000)
            assert len(records) == N_JOBS
            assert all(r.state is JobState.DONE for r in records)
    assert total_crashes >= len(seeds) // 2, total_crashes


@pytest.mark.faultinject
def test_queue_transactions_survive_targeted_kills(tmp_path, fault_free_output):
    """A kill plan aimed only at queue transaction edges, at a rate high
    enough that most transitions' pre/post-commit windows get hit."""
    data_dir = tmp_path / "queue-chaos" / "data"
    crashes, stdout = crash_and_recover(
        data_dir, seed=303, rate=0.05, max_attempts=60, sites="queue:"
    )
    assert crashes >= 1
    assert stdout == fault_free_output


@pytest.mark.faultinject
def test_trace_uploads_survive_targeted_kills(tmp_path, fault_free_output):
    """Kills aimed at the trace-store upload path: the published trace
    is always whole, residue is only ever .tmp-* files."""
    data_dir = tmp_path / "upload-chaos" / "data"
    crashes, stdout = crash_and_recover(
        data_dir, seed=707, rate=0.4, max_attempts=60, sites="trace-store"
    )
    assert crashes >= 1
    assert stdout == fault_free_output
    # the store holds exactly the one verified trace
    traces = list((data_dir / "traces").glob("*/*.rtb"))
    assert len(traces) == 1
    report = fsck_paths([data_dir], repair=False, tmp_age=0)
    assert not [f for f in report.findings if f.kind == "torn-trace"]


@pytest.mark.faultinject
def test_fsck_repairs_a_crashed_service_dir(tmp_path):
    """After a kill, ``repro-fsck --repair`` leaves the dir clean and a
    subsequent restart drains it."""
    data_dir = tmp_path / "repair" / "data"
    # arm a hot plan so the first runs almost surely die
    for attempt in range(40):
        spec = f"seed={4040 + attempt},rate=0.08,tear=0.5"
        proc = run_driver(data_dir, env_extra={"REPRO_KILLPOINTS": spec})
        if proc.returncode != 0:
            break
    else:
        pytest.skip("plan never fired")
    assert proc.returncode == KILLPOINT_EXIT_STATUS
    report = fsck_paths([data_dir], repair=True, tmp_age=0)
    assert not report.unrepaired, [f.to_dict() for f in report.unrepaired]
    # repaired dir checks clean (stale leases may need their 2s to lapse,
    # but repair already expired them)
    clean = fsck_paths([data_dir], repair=False, tmp_age=3600)
    assert not [
        f for f in clean.findings if f.kind not in {"stale-lease"}
    ], [f.to_dict() for f in clean.findings]
    final = run_driver(data_dir)
    assert final.returncode == 0, final.stderr
    assert final.stdout.count("\n") == N_JOBS
