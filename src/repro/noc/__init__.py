"""On-chip interconnect substrate: mesh topology, messages, timing model."""

from .messages import (
    CATEGORY_NAMES,
    DATA,
    FWD,
    INV,
    META,
    NUM_CATEGORIES,
    REGION,
    REQ,
    flits_for_payload,
)
from .network import MeshNetwork
from .topology import MeshTopology

__all__ = [
    "CATEGORY_NAMES",
    "DATA",
    "FWD",
    "INV",
    "META",
    "MeshNetwork",
    "MeshTopology",
    "NUM_CATEGORIES",
    "REGION",
    "REQ",
    "flits_for_payload",
]
