"""False sharing — disjoint bytes of the same lines.

Each thread repeatedly writes its own *slot* inside a shared array's
cache lines.  Byte ranges never overlap, so a byte-precise conflict
detector must stay silent — this workload is the precision check for
CE/CE+/ARC — yet under MESI-family coherence the lines ping-pong
between every writer, producing the worst-case invalidation storm the
paper's network-saturation discussion is about.  ARC's writers never
invalidate each other, which is exactly where its traffic advantage
peaks.

Slot width adapts to the thread count (64B line / threads, clamped to
1..8 bytes); above 64 threads the slots would vanish, so that is an
error.
"""

from __future__ import annotations

from ..common.errors import ConfigError
from ..common.rng import make_rng
from ..trace.program import Program
from .base import scaled, workload
from .patterns import AddressSpace, TraceAssembler, random_span

#: private lock per thread used purely to bound region length
_REGION_LOCK_BASE = 1000


@workload("false-sharing")
def generate(
    num_threads: int,
    seed: int,
    scale: float,
    *,
    rounds: int = 150,
    array_lines: int = 32,
    region_rounds: int = 4,
    private_ops: int = 8,
    gap: int = 1,
    bank_concentrate: bool = False,
) -> Program:
    """``bank_concentrate=True`` homes every shared line at LLC bank 0
    (line stride = 64 * num_threads), concentrating all coherence traffic
    on one tile's links — the configuration the network-saturation
    experiment uses to push MESI-family protocols toward link saturation.
    """
    if num_threads > 64:
        raise ConfigError("false-sharing supports at most 64 threads")
    rounds = scaled(rounds, scale)
    # Largest power-of-two slot that packs all threads into one 64B line
    # (power-of-two keeps slots aligned and inside the line).
    slot_size = 1
    while slot_size * 2 * num_threads <= 64 and slot_size < 8:
        slot_size *= 2
    space = AddressSpace()
    if bank_concentrate:
        # Stride lines by the bank count (= thread count in the harness)
        # so each used line's home is bank 0.
        stride = 64 * num_threads
        first = space.alloc(array_lines * stride, align=stride)
        line_addrs = [first + i * stride for i in range(array_lines)]
    else:
        array_base = space.alloc_lines(array_lines)
        line_addrs = [array_base + i * 64 for i in range(array_lines)]
    privates = space.alloc_per_thread(num_threads, 16 * 1024)

    traces = []
    for tid in range(num_threads):
        rng = make_rng(seed, "false-sharing", tid)
        asm = TraceAssembler()
        my_lock = _REGION_LOCK_BASE + tid
        slot_offset = tid * slot_size
        for round_idx in range(rounds):
            # Bound region length with an uncontended private lock.
            if round_idx % region_rounds == 0:
                asm.acquire(my_lock)
                asm.release(my_lock)
            line = (round_idx * (tid + 1)) % array_lines
            addr = line_addrs[line] + slot_offset
            asm.read(addr, size=slot_size)
            asm.write(addr, size=slot_size)
            if private_ops:
                asm.accesses(
                    random_span(rng, privates[tid], 16 * 1024, private_ops),
                    rng.random(private_ops) < 0.5,
                    gap=gap,
                )
        traces.append(asm.build())
    return Program(traces, name="false-sharing")
