"""Shared infrastructure for the benchmark harness.

Every ``bench_*.py`` module regenerates one of the paper's tables or
figures (see DESIGN.md's experiment index).  Benchmarks run the
experiment once through pytest-benchmark's pedantic mode (simulations
are deterministic — repetition adds nothing) at the ``bench`` preset,
print the regenerated table, and assert the result *shape* the paper
reports.

Run paper-scale versions with ``python -m repro.harness.run <exp-id>``.
"""

from __future__ import annotations

import pytest

from repro.harness import Settings, run_experiment


@pytest.fixture(scope="session")
def bench_settings() -> Settings:
    return Settings.bench()


@pytest.fixture
def run_exp(benchmark, bench_settings):
    """Run one experiment under pytest-benchmark and print its tables."""

    def runner(exp_id: str):
        tables = benchmark.pedantic(
            run_experiment, args=(exp_id, bench_settings), rounds=1, iterations=1
        )
        for table in tables:
            print()
            print(table.render())
        return tables

    return runner
