"""Compute-bound workload ("water-like").

The pattern SPLASH-2's water-nsquared motivates: each thread sweeps its
own L1-resident molecule array over and over (force evaluation), reading
a small read-only table of physical constants, with a barrier per
timestep.  After the first sweep warms the cache, essentially every
access is an L1 hit to thread-private or read-only-shared data — the
*dispatch-bound* regime where simulation wall-clock is pure per-event
protocol dispatch rather than memory-system modelling.  This is the
workload :mod:`benchmarks.bench_simcore` gates the batch engine's
speedup floor on (see docs/ENGINE.md).
"""

from __future__ import annotations

from ..common.rng import make_rng
from ..trace.program import Program
from .base import scaled, workload
from .patterns import AddressSpace, TraceAssembler, random_span, strided_span


@workload("compute-water")
def generate(
    num_threads: int,
    seed: int,
    scale: float,
    *,
    timesteps: int = 4,
    sweeps_per_step: int = 6,
    molecules_kb: int = 8,
    table_kb: int = 4,
    table_reads_per_sweep: int = 160,
    gap: int = 1,
) -> Program:
    space = AddressSpace()
    table_bytes = table_kb * 1024
    table_base = space.alloc(table_bytes)
    molecule_bytes = molecules_kb * 1024
    molecules = space.alloc_per_thread(num_threads, molecule_bytes)

    n_table = scaled(table_reads_per_sweep, scale)
    n_sweeps = scaled(sweeps_per_step, scale)

    traces = []
    for tid in range(num_threads):
        rng = make_rng(seed, "compute-water", tid)
        asm = TraceAssembler()
        positions = strided_span(molecules[tid], molecule_bytes // 8)
        for _ in range(timesteps):
            for _ in range(n_sweeps):
                # force evaluation: read every molecule, consult the
                # constants table, accumulate back in place
                asm.reads(positions, gap=gap)
                asm.reads(
                    random_span(rng, table_base, table_bytes, n_table),
                    gap=gap,
                )
                asm.writes(positions, gap=gap)
            asm.barrier(0)
        traces.append(asm.build())
    return Program(traces, name="compute-water")
