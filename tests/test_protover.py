"""Tests for the symbolic protocol verifier (``src/repro/protover``).

Three layers, mirroring the acceptance contract:

* the inductive sweeps are **clean on the shipped sources** — every
  reachable vocabulary state × event transition preserves all nine
  modelcheck invariants, stays inside the detection bounds, and the
  extracted guarded relation is complete, non-overlapping, and
  deterministic;
* each of the four seeded protocol mutations (the same ones the
  dynamic modelchecker drills in ``test_modelcheck.py``) is flagged
  *statically*, and the symbolic counterexample concretizes into a
  replayable modelcheck trace (status ``replayed``, never
  ``unsound``);
* the CLI honours its exit-code contract (0 clean / 3 findings or
  docs drift / 4 unsound) and the committed transition tables in
  ``docs/PROTOCOLS.md`` match what the verifier generates today.
"""

from __future__ import annotations

import pytest

from repro.protover import MUTATIONS, PROTOVER_KEYS, verify_protocol
from repro.protover.concretize import CONCRETIZABLE, cross_validate
from repro.protover.extract import load_instrumented
from repro.protover.refine import REFINEMENT_PAIRS, check_refinements
from repro.protover.space import REPLAY_KEYS, events_for, states_for
from repro.protover.tables import docs_current, docs_path, render_tables
from repro.tools.protover_cli import EXIT_FAIL, main

#: state-space sizes the vocabulary is expected to enumerate; a silent
#: shrink here would hollow out every "clean sweep" claim below
EXPECTED_STATES = {"mesi": 8, "moesi": 12, "ce": 448, "ceplus": 1344,
                   "arc": 784}


@pytest.fixture(scope="module")
def loaded():
    return load_instrumented()


@pytest.fixture(scope="module")
def sweeps(loaded):
    """One full unmutated sweep per protocol, shared across tests."""
    return {
        key: verify_protocol(key, loaded=loaded)
        for key in PROTOVER_KEYS
    }


# ---------------------------------------------------------------------------
# the inductive sweeps on unmutated sources


@pytest.mark.parametrize("key", PROTOVER_KEYS)
def test_clean_sweep(sweeps, key):
    result = sweeps[key]
    assert result.clean, (
        f"{key}: unexpected findings {result.finding_counts} — e.g. "
        + "; ".join(f"{f.kind}: {f.message}" for f in result.findings[:3])
    )
    assert result.states == EXPECTED_STATES[key]
    assert result.steps > 0 and result.sites > 100


@pytest.mark.parametrize("key", PROTOVER_KEYS)
def test_transition_table_covers_alphabet(sweeps, key):
    """Every enumerated state stepped through every applicable event:
    the aggregated table must mention every event shape."""
    result = sweeps[key]
    seen_events = {label.split(" ", 1)[-1] for _pre, label in result.table}
    expected = {
        event.label().split(" ", 1)[-1] for event in events_for(key)
    }
    assert seen_events == expected


def test_vocabulary_excludes_unreachable_spill_states():
    """A live spilled entry means the line left that core's cache
    (spill *is* eviction), so live-meta + any cached copy must never be
    enumerated — it is unreachable and breaks induction."""
    for state in states_for("ce"):
        for slot, meta in zip(state.slots, state.meta):
            if meta is not None and meta.live:
                assert slot is None


def test_refinements_hold(loaded):
    findings = check_refinements(loaded)
    assert findings == [], (
        "; ".join(f.message for f in findings[:3])
    )
    assert REFINEMENT_PAIRS == (("ceplus", "ce"), ("ce", "mesi"))


# ---------------------------------------------------------------------------
# the four seeded mutation drills, statically caught and concretized

#: mutation -> (finding kind that must appear, invariant name or None)
EXPECTED_CATCH = {
    "skip-invalidations": ("invariant", "swmr"),
    "blind-detection": ("detection-completeness", None),
    "ignore-region-tag": ("detection-soundness", None),
    "skip-self-invalidation": ("invariant", "arc-boundary"),
}


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutation_caught_and_concretized(name):
    kind, invariant = EXPECTED_CATCH[name]
    mutation = MUTATIONS[name]
    loaded = load_instrumented(name)
    result = verify_protocol(mutation.protocol, mutation=name, loaded=loaded)
    assert kind in result.finding_counts, (
        f"{name}: expected {kind} findings, got {result.finding_counts}"
    )
    if invariant is not None:
        assert invariant in {
            f.invariant for f in result.findings if f.kind == "invariant"
        }

    # the symbolic counterexample must earn a concrete witness
    finding = next(f for f in result.findings if f.kind == kind)
    assert finding.kind in CONCRETIZABLE
    status = cross_validate(finding, name, REPLAY_KEYS[result.protocol])
    assert status == "replayed", (
        f"{name}: concretization came back {status!r} "
        f"(trace: {finding.trace!r})"
    )
    assert finding.trace and "step" in finding.trace


# ---------------------------------------------------------------------------
# CLI exit-code contract and docs drift


def test_cli_clean_exit_zero():
    assert main(["mesi", "moesi", "--no-refine", "--no-concretize"]) == 0


def test_cli_mutant_exit_three(capsys):
    code = main(["--mutate", "skip-invalidations", "--no-concretize"])
    assert code == EXIT_FAIL
    out = capsys.readouterr().out
    assert "invariant" in out and "[mutant skip-invalidations]" in out


def test_cli_fail_on_filters():
    # skip-invalidations produces only invariant findings; asking to
    # fail on a kind it never produces must exit clean
    assert main([
        "--mutate", "skip-invalidations", "--no-concretize",
        "--fail-on", "detection-soundness",
    ]) == 0
    assert main([
        "--mutate", "skip-invalidations", "--no-concretize",
        "--fail-on", "never",
    ]) == 0
    assert main([
        "--mutate", "skip-invalidations", "--no-concretize",
        "--fail-on", "invariant",
    ]) == EXIT_FAIL


def test_cli_rejects_bad_arguments():
    with pytest.raises(SystemExit):
        main(["--mutate", "no-such-mutation"])
    with pytest.raises(SystemExit):
        main(["no-such-protocol"])
    with pytest.raises(SystemExit):
        main(["--mutate", "blind-detection", "--write-docs"])


def test_cli_list_mutations(capsys):
    assert main(["--list-mutations"]) == 0
    out = capsys.readouterr().out
    for name in MUTATIONS:
        assert name in out


def test_cli_json_output(capsys):
    import json

    assert main(["mesi", "--format", "json", "--no-refine",
                 "--no-concretize"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["protocols"][0]["protocol"] == "mesi"
    assert payload["protocols"][0]["finding_counts"] == {}
    assert payload["unsound"] is False


def test_committed_docs_are_current(sweeps):
    """The drift gate CI runs, without re-sweeping: the committed
    ``docs/PROTOCOLS.md`` section must match today's generated tables."""
    generated = render_tables([sweeps[key] for key in PROTOVER_KEYS])
    document = docs_path().read_text()
    assert docs_current(document, generated), (
        "docs/PROTOCOLS.md is stale — run repro-protover --write-docs"
    )


def test_splice_roundtrip():
    from repro.protover.tables import BEGIN, END, splice

    fresh = splice("# Title\n\nprose\n", f"{BEGIN}\nbody\n{END}")
    assert fresh.count(BEGIN) == 1 and fresh.startswith("# Title")
    replaced = splice(fresh, f"{BEGIN}\nnew body\n{END}")
    assert "new body" in replaced and "\nbody\n" not in replaced
    assert replaced.count(BEGIN) == 1


def test_guard_sites_cover_all_protocol_modules(loaded):
    modules = {site.module for site in loaded.sites.sites}
    # ceplus.py has no branch statements of its own (its AIM logic
    # lives in protocols/aim.py, which runs un-instrumented as shared
    # support code), so it contributes no guard sites
    assert {"base", "mesi", "ce", "arc"} <= modules
    rendered = loaded.sites[0].render()
    assert ".py:" in rendered and "[" in rendered
