"""NoC link heatmap: visualize where traffic concentrates on the mesh.

Runs one workload under one protocol while sampling per-link flit
counts, then draws the mesh as ASCII art with each link shaded by its
total traffic — making hotspots (like the bank-0 concentration in the
network-saturation experiment) visible at a glance.

Usage::

    python -m repro.tools.heatmap false-sharing --protocol ce+ --threads 16
    python -m repro.tools.heatmap lock-counter --protocol arc
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..common.config import SystemConfig
from ..core.simulator import Simulator
from ..noc.network import MeshNetwork
from ..noc.topology import MeshTopology
from .inspect import load_target, parse_params

#: shading ramp, light to heavy
_SHADES = " .:-=+*#%@"


class _CountingNetwork(MeshNetwork):
    """MeshNetwork that additionally accumulates lifetime per-link flits."""

    def __init__(self, topology: MeshTopology, cfg):
        super().__init__(topology, cfg)
        self.lifetime_link_flits = np.zeros(topology.num_links)

    def send(self, src, dst, payload_bytes, category, cycle):
        if src != dst:
            from ..noc.messages import flits_for_payload

            flits = flits_for_payload(payload_bytes, self.cfg.flit_bytes)
            for link in self.topology.route(src, dst):
                self.lifetime_link_flits[link] += flits
        return super().send(src, dst, payload_bytes, category, cycle)


def shade(value: float, peak: float) -> str:
    if peak <= 0:
        return _SHADES[0]
    index = min(int(value / peak * (len(_SHADES) - 1)), len(_SHADES) - 1)
    return _SHADES[index]


def render_heatmap(topology: MeshTopology, link_flits: np.ndarray) -> str:
    """Draw the mesh: tiles as [id], links shaded by traffic.

    Horizontal/vertical neighbours' two directed links are combined.
    """
    peak = float(link_flits.max()) if len(link_flits) else 0.0

    def combined(a: int, b: int) -> float:
        total = 0.0
        for src, dst in ((a, b), (b, a)):
            route = topology.route(src, dst)
            if len(route) == 1:
                total += float(link_flits[route[0]])
        return total

    lines = []
    width, height = topology.width, topology.height
    for y in range(height):
        row = []
        for x in range(width):
            tile = y * width + x
            row.append(f"[{tile:2d}]")
            if x + 1 < width:
                row.append(shade(combined(tile, tile + 1), peak) * 3)
        lines.append("".join(row))
        if y + 1 < height:
            vertical = []
            for x in range(width):
                tile = y * width + x
                vertical.append(
                    " " + shade(combined(tile, tile + width), peak) + "  "
                )
                if x + 1 < width:
                    vertical.append("   ")
            lines.append("".join(vertical))
    legend = f"shade ramp '{_SHADES}' spans 0 .. {peak:,.0f} flits/link"
    return "\n".join(lines + [legend])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.heatmap")
    parser.add_argument("target", help="workload name or .npz trace path")
    parser.add_argument(
        "--protocol", choices=("mesi", "ce", "ce+", "arc"), default="mesi"
    )
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="workload generator parameter (repeatable)",
    )
    args = parser.parse_args(argv)

    program = load_target(
        args.target, args.threads, args.seed, args.scale,
        **parse_params(args.param),
    )
    cfg = SystemConfig(
        num_cores=max(2, program.num_threads), protocol=args.protocol
    )
    sim = Simulator(cfg, program)
    # swap in the counting network before any traffic flows
    counting = _CountingNetwork(sim.machine.topology, cfg.noc)
    sim.machine.net = counting
    sim.protocol.machine = sim.machine
    result = sim.run()

    print(
        f"{program.name} under {args.protocol}: {result.flit_hops:,} flit-hops "
        f"in {result.cycles:,} cycles on a "
        f"{cfg.mesh_width}x{cfg.mesh_height} mesh"
    )
    print()
    print(render_heatmap(sim.machine.topology, counting.lifetime_link_flits))
    return 0


if __name__ == "__main__":
    sys.exit(main())
