"""Trace (de)serialization.

Programs round-trip through NumPy ``.npz`` archives: one structured array
per thread plus a small JSON metadata blob.  This lets long workloads be
generated once and replayed across protocol runs or shared between
machines.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..common.errors import TraceError
from .events import EVENT_DTYPE, ThreadTrace
from .program import Program

_FORMAT_VERSION = 1


def save_program(program: Program, path: str | Path) -> None:
    """Write ``program`` to ``path`` as a compressed ``.npz`` archive."""
    path = Path(path)
    meta = {
        "version": _FORMAT_VERSION,
        "name": program.name,
        "num_threads": program.num_threads,
        "barriers": {
            str(bid): sorted(tids)
            for bid, tids in program.barrier_participants.items()
        },
    }
    arrays = {
        f"thread_{tid}": trace.events for tid, trace in enumerate(program.traces)
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez_compressed(path, **arrays)


def load_program(path: str | Path) -> Program:
    """Load a program previously written by :func:`save_program`."""
    path = Path(path)
    with np.load(path) as archive:
        if "meta" not in archive:
            raise TraceError(f"{path}: not a repro trace archive (no meta)")
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise TraceError(
                f"{path}: unsupported trace format version {meta.get('version')}"
            )
        traces = []
        for tid in range(meta["num_threads"]):
            key = f"thread_{tid}"
            if key not in archive:
                raise TraceError(f"{path}: missing {key}")
            events = archive[key]
            if events.dtype != EVENT_DTYPE:
                raise TraceError(f"{path}: {key} has dtype {events.dtype}")
            traces.append(ThreadTrace(events.copy()))
    barriers = {
        int(bid): frozenset(tids) for bid, tids in meta.get("barriers", {}).items()
    }
    return Program(traces=traces, name=meta["name"], barrier_participants=barriers)
